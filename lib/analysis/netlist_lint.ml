module Graph = Pchls_dfg.Graph
module Design = Pchls_core.Design
module Regalloc = Pchls_core.Regalloc
module Netlist = Pchls_rtl.Netlist
module Diag = Pchls_diag.Diag
module Int_set = Set.Make (Int)

let set_to_string s =
  "{" ^ String.concat ", " (List.map string_of_int (Int_set.elements s)) ^ "}"

let lint ~design (n : Netlist.t) =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let g = Design.graph design in
  let allocation = Design.register_allocation design in
  let reg_of = Regalloc.register_of allocation in
  let instances = Design.instances design in
  let inst_ids =
    List.fold_left
      (fun acc (i : Design.instance) -> Int_set.add i.Design.id acc)
      Int_set.empty instances
  in
  let fu_ids =
    List.fold_left
      (fun acc (f : Netlist.fu) -> Int_set.add f.Netlist.fu_id acc)
      Int_set.empty n.Netlist.fus
  in
  let reg_count = Array.length allocation in
  (* NET005: the netlist's id universe must match the design's. *)
  if n.Netlist.register_count <> reg_count then
    push
      (Diag.errorf ~code:"NET005" ~layer:Netlist ~entity:Design
         "netlist declares %d registers but the design allocates %d"
         n.Netlist.register_count reg_count);
  Int_set.iter
    (fun id ->
      if not (Int_set.mem id inst_ids) then
        push
          (Diag.errorf ~code:"NET005" ~layer:Netlist ~entity:(Instance id)
             "netlist FU %d does not correspond to any design instance" id))
    fu_ids;
  Int_set.iter
    (fun id ->
      if not (Int_set.mem id fu_ids) then
        push
          (Diag.errorf ~code:"NET005" ~layer:Netlist ~entity:(Instance id)
             "design instance %d has no FU in the netlist" id))
    inst_ids;
  let check_reg_ref ~what r =
    if r < 0 || r >= n.Netlist.register_count then
      push
        (Diag.errorf ~code:"NET005" ~layer:Netlist ~entity:(Register r)
           "%s references unknown register %d" what r)
  in
  let check_fu_ref ~what f =
    if not (Int_set.mem f fu_ids) then
      push
        (Diag.errorf ~code:"NET005" ~layer:Netlist ~entity:(Instance f)
           "%s references unknown FU %d" what f)
  in
  List.iter
    (fun (f, sources) ->
      check_fu_ref ~what:"fu_sources" f;
      List.iter (check_reg_ref ~what:(Printf.sprintf "fu %d sources" f)) sources)
    n.Netlist.fu_sources;
  List.iter
    (fun (r, writers) ->
      check_reg_ref ~what:"register_writers" r;
      List.iter
        (check_fu_ref ~what:(Printf.sprintf "register %d writers" r))
        writers)
    n.Netlist.register_writers;
  (* NET002: per-FU source registers must be exactly what the bound
     operations' predecessors imply — otherwise the operand muxes select
     from the wrong registers (or a >2-source over-subscription goes
     unaccounted). *)
  List.iter
    (fun (i : Design.instance) ->
      let expected =
        List.fold_left
          (fun acc (op, _) ->
            List.fold_left
              (fun acc p -> Int_set.add (reg_of p) acc)
              acc (Graph.preds g op))
          Int_set.empty i.Design.ops
      in
      let recorded =
        match List.assoc_opt i.Design.id n.Netlist.fu_sources with
        | Some rs -> Int_set.of_list rs
        | None -> Int_set.empty
      in
      if not (Int_set.equal expected recorded) then
        push
          (Diag.errorf ~code:"NET002" ~layer:Netlist ~entity:(Instance i.Design.id)
             "FU %d is wired to source registers %s but the design implies %s"
             i.Design.id (set_to_string recorded) (set_to_string expected)))
    instances;
  (* NET001: register writer sets (the input-mux select wiring). *)
  Array.iteri
    (fun r producers ->
      let expected =
        List.fold_left
          (fun acc p ->
            Int_set.add (Design.instance_of design p).Design.id acc)
          Int_set.empty producers
      in
      let recorded =
        match List.assoc_opt r n.Netlist.register_writers with
        | Some ws -> Int_set.of_list ws
        | None -> Int_set.empty
      in
      if not (Int_set.equal expected recorded) then
        push
          (Diag.errorf ~code:"NET001" ~layer:Netlist ~entity:(Register r)
             "register %d%s records writers %s but the design implies %s" r
             (if Int_set.cardinal expected > 1 then
                " (multiply-written: its input mux wiring)"
              else "")
             (set_to_string recorded) (set_to_string expected)))
    allocation;
  (* NET003: the activation table drives the FSM control words; it must
     list exactly the schedule's (instance, op) starts, at their steps. *)
  if n.Netlist.steps <> Design.time_limit design then
    push
      (Diag.errorf ~code:"NET003" ~layer:Netlist ~entity:Design
         "netlist spans %d control steps but the design's time limit is %d"
         n.Netlist.steps (Design.time_limit design));
  let expected_start =
    List.concat_map
      (fun (i : Design.instance) ->
        List.map (fun (op, t) -> (op, (i.Design.id, t))) i.Design.ops)
      instances
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (step, pairs) ->
      List.iter
        (fun (fu, op) ->
          if Hashtbl.mem seen op then
            push
              (Diag.errorf ~code:"NET003" ~layer:Netlist ~entity:(Node op)
                 "op %d is activated more than once" op)
          else begin
            Hashtbl.replace seen op ();
            match List.assoc_opt op expected_start with
            | None ->
              push
                (Diag.errorf ~code:"NET003" ~layer:Netlist ~entity:(Node op)
                   "activation at step %d names op %d, which the design does \
                    not schedule"
                   step op)
            | Some (exp_fu, exp_t) ->
              if exp_t <> step || exp_fu <> fu then
                push
                  (Diag.errorf ~code:"NET003" ~layer:Netlist ~entity:(Node op)
                     "op %d activates on FU %d at step %d but the design \
                      schedules it on instance %d at step %d"
                     op fu step exp_fu exp_t)
          end)
        pairs)
    n.Netlist.activations;
  List.iter
    (fun (op, (fu, t)) ->
      if not (Hashtbl.mem seen op) then
        push
          (Diag.errorf ~code:"NET003" ~layer:Netlist ~entity:(Node op)
             "op %d (instance %d, step %d) is missing from the activation \
              table"
             op fu t))
    expected_start;
  (* NET004: every register should be written and read by someone. *)
  let sourced =
    List.fold_left
      (fun acc (_, rs) -> List.fold_left (fun acc r -> Int_set.add r acc) acc rs)
      Int_set.empty n.Netlist.fu_sources
  in
  List.iter
    (fun (r, writers) ->
      if writers = [] then
        push
          (Diag.warningf ~code:"NET004" ~layer:Netlist ~entity:(Register r)
             "register %d is never written" r)
      else if not (Int_set.mem r sourced) then
        push
          (Diag.warningf ~code:"NET004" ~layer:Netlist ~entity:(Register r)
             "register %d is never read by any FU" r))
    n.Netlist.register_writers;
  Diag.sort !diags
