(** Netlist lint: cross-checks a structural netlist against the design it
    claims to implement.

    The netlist record ({!Pchls_rtl.Netlist.t}) duplicates design facts —
    register writer sets, per-FU source registers, the control-step
    activation table — precisely so RTL backends need no further queries.
    That redundancy is what this lint verifies: a divergence means the
    emitted mux wiring or FSM control words would silently disagree with the
    validated schedule/binding.

    Codes: [NET001] wrong writer set on a (multiply-written) register,
    [NET002] wrong per-FU source registers / unaccounted port
    over-subscription, [NET003] activation table inconsistent with the
    schedule, [NET004] (warning) dangling register, [NET005] reference to an
    unknown FU or register. *)

val lint :
  design:Pchls_core.Design.t -> Pchls_rtl.Netlist.t -> Pchls_diag.Diag.t list
