(** Binding and register-allocation lint.

    Checks a binding — functional-unit instances with their (operation,
    start) assignments, in the same raw form [Design.assemble] consumes —
    plus, at design level, the register allocation produced by [Regalloc].

    Codes: [BND001] execution overlap on a shared instance, [BND002]
    operation kind not implementable by the bound module, [BND003]
    [max_instances] cap exceeded, [BND004] register lifetime overlap,
    [BND005] operation bound twice, [BND006] unknown operation bound,
    [BND007] unbound operation, [BND008] (warning) empty instance. *)

(** [lint_instances ~graph ?max_instances ~instances ()] checks the raw
    binding alone (no allocation): BND001/2/3/5/6/7/8. *)
val lint_instances :
  graph:Pchls_dfg.Graph.t ->
  ?max_instances:(string * int) list ->
  instances:(Pchls_fulib.Module_spec.t * (int * int) list) list ->
  unit ->
  Pchls_diag.Diag.t list

(** [lint_allocation ~graph ~schedule ~info allocation] checks that no two
    values sharing a register have overlapping lifetimes ([BND004]), per
    {!Pchls_core.Regalloc.lifetimes}. *)
val lint_allocation :
  graph:Pchls_dfg.Graph.t ->
  schedule:Pchls_sched.Schedule.t ->
  info:(int -> Pchls_sched.Schedule.op_info) ->
  int list array ->
  Pchls_diag.Diag.t list

(** [lint ?max_instances d] runs both passes over a synthesized design. *)
val lint :
  ?max_instances:(string * int) list ->
  Pchls_core.Design.t ->
  Pchls_diag.Diag.t list
