module Graph = Pchls_dfg.Graph
module Op = Pchls_dfg.Op
module Library = Pchls_fulib.Library
module Diag = Pchls_diag.Diag
module Int_set = Set.Make (Int)

let lint_raw ~nodes ~edges =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      if n.id < 0 then
        push
          (Diag.errorf ~code:"DFG005" ~layer:Dfg ~entity:(Node n.id)
             "node %S has negative id %d" n.name n.id)
      else if Hashtbl.mem ids n.id then
        push
          (Diag.errorf ~code:"DFG005" ~layer:Dfg ~entity:(Node n.id)
             "node id %d is duplicated" n.id)
      else Hashtbl.replace ids n.id ())
    nodes;
  let seen_edges = Hashtbl.create 64 in
  let valid_edges =
    List.filter
      (fun (src, dst) ->
        let ok = ref true in
        List.iter
          (fun endpoint ->
            if not (Hashtbl.mem ids endpoint) then begin
              ok := false;
              push
                (Diag.errorf ~code:"DFG002" ~layer:Dfg ~entity:(Edge (src, dst))
                   "edge %d->%d references unknown node %d" src dst endpoint)
            end)
          (List.sort_uniq Int.compare [ src; dst ]);
        if src = dst && Hashtbl.mem ids src then begin
          ok := false;
          push
            (Diag.errorf ~code:"DFG004" ~layer:Dfg ~entity:(Edge (src, dst))
               "edge %d->%d is a self-loop" src dst)
        end;
        if Hashtbl.mem seen_edges (src, dst) then begin
          ok := false;
          push
            (Diag.errorf ~code:"DFG003" ~layer:Dfg ~entity:(Edge (src, dst))
               "edge %d->%d is duplicated" src dst)
        end;
        Hashtbl.replace seen_edges (src, dst) ();
        !ok)
      edges
  in
  (* Kahn's algorithm over the well-formed subset: whatever cannot be
     topologically ordered sits on a cycle. *)
  let indegree = Hashtbl.create 64 in
  Hashtbl.iter (fun id () -> Hashtbl.replace indegree id 0) ids;
  List.iter
    (fun (_, dst) ->
      Hashtbl.replace indegree dst (Hashtbl.find indegree dst + 1))
    valid_edges;
  let succs = Hashtbl.create 64 in
  List.iter
    (fun (src, dst) ->
      Hashtbl.replace succs src
        (dst :: Option.value ~default:[] (Hashtbl.find_opt succs src)))
    valid_edges;
  let ready =
    Hashtbl.fold (fun id d acc -> if d = 0 then id :: acc else acc) indegree []
  in
  let removed = ref 0 in
  let rec drain = function
    | [] -> ()
    | id :: rest ->
      incr removed;
      let next =
        List.fold_left
          (fun acc s ->
            let d = Hashtbl.find indegree s - 1 in
            Hashtbl.replace indegree s d;
            if d = 0 then s :: acc else acc)
          rest
          (Option.value ~default:[] (Hashtbl.find_opt succs id))
      in
      drain next
  in
  drain ready;
  if !removed < Hashtbl.length ids then begin
    let cyclic =
      Hashtbl.fold
        (fun id d acc -> if d > 0 then Int_set.add id acc else acc)
        indegree Int_set.empty
    in
    push
      (Diag.errorf ~code:"DFG001" ~layer:Dfg
         ~entity:(Node (Int_set.min_elt cyclic))
         "dependency cycle through nodes: %s"
         (String.concat ", "
            (List.map string_of_int (Int_set.elements cyclic))))
  end;
  Diag.sort !diags

let lint ?library g =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  (match library with
  | None -> ()
  | Some lib -> (
    match Library.covers lib g with
    | Ok () -> ()
    | Error kinds ->
      List.iter
        (fun k ->
          push
            (Diag.errorf ~code:"DFG006" ~layer:Dfg ~entity:(Kind (Op.to_string k))
               "operation kind %s has no implementing module in the library"
               (Op.to_string k)))
        kinds));
  List.iter
    (fun id ->
      match Graph.kind g id with
      | Op.Output -> ()
      | Op.Add | Op.Sub | Op.Mult | Op.Comp | Op.Input ->
        push
          (Diag.warningf ~code:"DFG007" ~layer:Dfg ~entity:(Node id)
             "node %d (%s) is a sink but not an output: its value is never \
              consumed"
             id
             (Graph.node_name g id)))
    (Graph.sinks g);
  Diag.sort !diags
