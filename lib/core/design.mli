(** A synthesized design: schedule + allocation + binding, with its derived
    registers, interconnect and area breakdown. *)

type instance = {
  id : int;
  spec : Pchls_fulib.Module_spec.t;
  ops : (int * int) list;  (** (operation, start time), sorted by start *)
}

type area_breakdown = {
  fu : float;
  registers : float;
  mux : float;
  total : float;
}

type t

(** [assemble ~cost_model ~graph ~time_limit ~power_limit ~instances] derives
    the schedule from the instances' op lists, allocates registers, estimates
    interconnect, and validates the whole design (totality, precedence, time
    and power constraints, no overlap on any instance).

    Errors with a human-readable message when the binding is inconsistent or
    a constraint is violated. Every message is a rendered
    {!Pchls_diag.Diag.t}, so it leads with a stable diagnostic code
    ([BND001] instance overlap, [BND002] kind not implementable, [BND005]
    op bound twice, [BND006] unknown op, [BND007] unbound op, [SCH0xx]
    schedule violations) and names the offending instance/op ids. *)
val assemble :
  cost_model:Cost_model.t ->
  graph:Pchls_dfg.Graph.t ->
  time_limit:int ->
  power_limit:float ->
  instances:(Pchls_fulib.Module_spec.t * (int * int) list) list ->
  (t, string) result

val graph : t -> Pchls_dfg.Graph.t
val time_limit : t -> int
val power_limit : t -> float
val instances : t -> instance list
val schedule : t -> Pchls_sched.Schedule.t

(** [instance_of d op] is the instance hosting [op]. *)
val instance_of : t -> int -> instance

(** [info d op] is the scheduling view (latency, power) of [op] under its
    bound module. *)
val info : t -> int -> Pchls_sched.Schedule.op_info

(** [register_allocation d] — register index to producer nodes. *)
val register_allocation : t -> int list array

val register_count : t -> int
val mux_inputs : t -> Interconnect.summary
val area : t -> area_breakdown

(** [profile d] is the per-cycle power profile over [time_limit] cycles. *)
val profile : t -> Pchls_power.Profile.t

(** [makespan d] is the finish time of the last operation. *)
val makespan : t -> int

(** [energy d] is the energy of one schedule iteration: each operation
    contributes its module's power times its latency. Binding-dependent but
    schedule-independent — power-constrained synthesis reshapes the profile
    without changing the energy of a fixed binding. *)
val energy : t -> float

(** [energy_breakdown d] lists each instance's share of {!energy}, by
    instance id. *)
val energy_breakdown : t -> (int * float) list

val pp : Format.formatter -> t -> unit
