(** Design-space exploration over the (time, power) constraint grid — the
    paper's "investigated different regions in the time-power-constraint
    space", packaged as an API. Used by the CLI sweep command and the
    Figure 2 harness. *)

type point = {
  time_limit : int;
  power_limit : float;
  result : result;
}

and result =
  | Feasible of { area : float; peak : float; design : Design.t }
  | Infeasible of string
  | Pruned of string
      (** statically proven infeasible by preflight
          ({!Pchls_preflight.Preflight}) — the engine never ran; the string
          is the certificate ("PRE0xx: ..."). Cached as [Store.Infeasible]
          under a ["preflight: "] reason prefix, so warm caches replay
          prunes as [Pruned] and non-preflight consumers still read them as
          sound infeasibility. *)
  | Failed of string
      (** the point's evaluation crashed (or was skipped past a deadline) —
          unlike [Infeasible], this says nothing about the problem itself
          and is never cached *)

(** [fingerprint ~library g] is the content-addressed cache key context of
    one synthesis configuration: an engine-version salt combined with
    canonical digests of the graph ({!Pchls_cache.Fingerprint.graph} — so
    node-id renumberings share entries), the FU library, the cost model and
    the policy. {!Store.key}s pair it with the (T, P<) grid coordinates.
    Defaults as {!Engine.run}. *)
val fingerprint :
  ?cost_model:Cost_model.t ->
  ?policy:Engine.policy ->
  library:Pchls_fulib.Library.t ->
  Pchls_dfg.Graph.t ->
  Pchls_cache.Fingerprint.t

(** [solve ~library g ~time_limit ~power_limit] synthesizes one grid point,
    consulting [cache] when given (as in {!sweep}); [fp] skips re-deriving
    the {!fingerprint}. This is the unit of work behind {!sweep} and
    {!tighten} — exposed so callers (e.g. [pchls profile]) can run a single
    cache-backed point under a tracing sink.

    [deadline] is forwarded to {!Engine.run}; a result produced under an
    exhausted budget (a forced partial design, or a deadline-caused
    infeasibility) is returned but never cached, since it describes the
    deadline rather than the problem.

    [preflight] (default [false]) consults the static bound analysis on a
    cache miss: a certificate yields [Pruned] without running the engine. *)
val solve :
  ?cost_model:Cost_model.t ->
  ?policy:Engine.policy ->
  ?deadline:Pchls_resil.Budget.t ->
  ?preflight:bool ->
  library:Pchls_fulib.Library.t ->
  ?cache:Pchls_cache.Store.t ->
  ?fp:Pchls_cache.Fingerprint.t ->
  Pchls_dfg.Graph.t ->
  time_limit:int ->
  power_limit:float ->
  result

(** [sweep ~library g ~times ~powers] synthesizes every grid point, in row
    (time) then column (power) order. Optional arguments as {!Engine.run}.

    [jobs] (default 1) evaluates grid points on a {!Pchls_par.Pool} of that
    many domains — synthesis is pure, so the result is point-for-point
    identical to the sequential sweep, whatever the completion order.

    [cache] memoizes each point under {!fingerprint}: hits skip the engine
    entirely (feasible entries are rebuilt into full designs via
    [Design.assemble]); misses are solved and stored. The store is
    thread-safe, so the same cache may serve a parallel sweep.

    Points are evaluated in isolation: an evaluation that crashes — or an
    armed ["explore.point"] / ["pool.worker"] fault ({!Pchls_resil.Fault},
    keyed by grid index) that survives the pool's one retry — yields a
    per-point [Failed] while every other point still completes. With
    [deadline], points reached after the budget expires come back
    [Failed "deadline exceeded before evaluation"] without running the
    engine, and the point being evaluated when it expires returns the
    engine's anytime partial result. A sweep never raises because of a
    single point.

    [preflight] (default [false]) statically analyses every grid point in
    the calling domain first: points with an infeasibility certificate come
    back [Pruned] without ever being dispatched to the pool (and are cached
    like engine results), so workers only see points with a chance of a
    design. Sound — a pruned point is provably infeasible — but off by
    default so existing sweeps stay byte-identical. *)
val sweep :
  ?cost_model:Cost_model.t ->
  ?policy:Engine.policy ->
  ?jobs:int ->
  ?cache:Pchls_cache.Store.t ->
  ?deadline:Pchls_resil.Budget.t ->
  ?preflight:bool ->
  library:Pchls_fulib.Library.t ->
  Pchls_dfg.Graph.t ->
  times:int list ->
  powers:float list ->
  point list

(** [min_feasible_power points ~time_limit] is the smallest power budget of
    a feasible point at that time limit, if any. *)
val min_feasible_power : point list -> time_limit:int -> float option

(** [pareto points] keeps the non-dominated feasible points: point [a]
    dominates [b] when [a] is no worse on time limit, power limit and area,
    and strictly better on at least one. Result sorted by (time, power). *)
val pareto : point list -> point list

(** [render_table points] formats the grid as the area table printed by the
    Figure 2 harness (['-'] marks infeasible points, [∅] statically pruned
    ones, ['!'] points whose evaluation failed), ending with a one-line
    legend. Rows are time limits,
    columns power limits, both sorted ascending with duplicates collapsed,
    so the rendering is stable whatever order or multiplicity the sweep's
    inputs had. *)
val render_table : point list -> string

(** [tighten ~library g ~time_limit ~power_limit] refines area by re-running
    the engine under artificially *tightened* power budgets: a tighter budget
    serialises operations, which often enables more sharing, and any design
    meeting a tighter budget also meets [power_limit]. Budgets descend from
    [power_limit] (or from the first design's measured peak when the limit is
    infinite), each step taking the smaller of 3/4 of the previous budget and
    just under the previous design's peak, for at most [steps] (default 6)
    further syntheses. Returns the smallest-area design found; [Error] only
    when even the original budget is infeasible.

    [cache] memoizes every ladder attempt exactly as in {!sweep}, so
    repeated tightenings of the same configuration re-run nothing. *)
val tighten :
  ?cost_model:Cost_model.t ->
  ?policy:Engine.policy ->
  ?steps:int ->
  ?cache:Pchls_cache.Store.t ->
  ?deadline:Pchls_resil.Budget.t ->
  library:Pchls_fulib.Library.t ->
  Pchls_dfg.Graph.t ->
  time_limit:int ->
  power_limit:float ->
  (Design.t, string) Stdlib.result
