(** The paper's synthesis algorithm: simultaneous scheduling, allocation and
    binding minimising area under a latency constraint [time_limit] and a
    peak per-cycle power constraint [power_limit].

    The engine follows the paper's structure:

    + every unbound operation carries a *default* module chosen by [policy]
      (upgraded towards faster modules when the initial pasap schedule misses
      the time constraint);
    + each iteration computes the power-constrained {!Pchls_sched.Pasap} and
      {!Pchls_sched.Palap} schedules, which bound each unbound operation's
      feasible start window;
    + the best sharing decision of the time-extended compatibility view is
      committed greedily — merging the operation onto an existing instance
      (possibly *retyping* the instance to a richer module, e.g. two adders
      and a subtracter becoming one ALU), or allocating a fresh instance of
      its default module. Gains are area saved minus an interconnect
      penalty;
    + after each commit, pasap feasibility is re-verified; on failure the
      engine backtracks one step and **locks** every unbound operation to
      its start time in the last valid pasap schedule, continuing with
      binding decisions only — exactly the paper's recovery rule. *)

type policy = Min_power | Min_area | Min_latency

(** How a run ended. [Deadline_exceeded] marks an {e anytime} partial
    result: the engine stopped optimising when its {!Pchls_resil.Budget}
    ran out and force-completed the [forced] remaining operations as fresh
    instances of their default modules at their start times in the last
    valid pasap schedule — still precedence- and power-feasible by
    construction, just without the sharing a full run would have found
    (and possibly exceeding [max_instances] caps). *)
type completion =
  | Complete
  | Deadline_exceeded of { reason : Pchls_resil.Budget.reason; forced : int }

type stats = {
  decisions : int;  (** committed decisions (one per operation) *)
  merges : int;  (** same-module sharings *)
  retype_merges : int;  (** sharings that widened the instance's module *)
  new_instances : int;
  backtracks : int;  (** paper-style undo-and-lock events *)
  default_upgrades : int;  (** default modules promoted to meet [time_limit] *)
  completion : completion;  (** [Complete] unless a deadline intervened *)
}

type outcome =
  | Synthesized of Design.t * stats
  | Infeasible of { reason : string }

(** [run ~library ~time_limit ?power_limit g] synthesizes [g]. Defaults:
    [cost_model = Cost_model.default], [policy = Min_power],
    [power_limit = infinity] (pure time-constrained synthesis).

    [max_instances] caps how many instances of a named module type may be
    allocated (including by retyping), e.g. [["mult_ser", 1]] for a
    single-multiplier datapath. Unlisted module types are unlimited. Caps
    can make the problem infeasible, which is reported, not raised.

    [seed_instances] pre-populates the datapath with existing (empty)
    functional units, which merge decisions may reuse for free — the
    mechanism behind {!Shared} multi-behaviour synthesis. Seeds that end up
    hosting no operation are dropped from the resulting design.

    [self_check] re-lints the locked schedule after every
    backtrack-and-lock event via {!Pchls_sched.Schedule.validate}, and
    additionally cross-checks every iteration's candidate pick from the
    persistent gain-ordered store against a full enumeration-and-sort of
    all candidates; a failed check aborts synthesis as [Infeasible] with
    the diagnostic in the reason (defence in depth — it should never fire,
    and the run also ends with [Design.assemble]'s full validation either
    way).

    [preflight] (default [false]) runs the static bound analysis
    ({!Pchls_preflight.Preflight.analyze}, without the exact area search)
    before any scheduling: when a certificate proves the instance
    infeasible, the run returns [Infeasible] immediately with a
    ["preflight: PRE0xx: ..."] reason instead of searching. Sound — the
    engine only skips work it could never have completed — but the reason
    string differs from the engine's own, so the default stays off.

    [deadline] makes the run {e anytime}: the budget is polled at every
    engine-iteration boundary, and its wall clock / cancellation also
    interrupt the pasap/palap offset loops mid-iteration. On exhaustion the
    best design so far is completed and returned with
    [stats.completion = Deadline_exceeded _] — never an exception — or, if
    no feasible schedule existed yet, [Infeasible] with a
    ["deadline exceeded before a feasible design was found"] reason.
    Without [deadline] the run is byte-identical to an unbudgeted one.

    @raise Invalid_argument when [time_limit < 1], [power_limit <= 0], a
    cap is negative or names an unknown module, or the library does not
    cover some operation kind of [g]. *)
val run :
  ?cost_model:Cost_model.t ->
  ?policy:policy ->
  ?max_instances:(string * int) list ->
  ?seed_instances:Pchls_fulib.Module_spec.t list ->
  ?self_check:bool ->
  ?preflight:bool ->
  ?deadline:Pchls_resil.Budget.t ->
  library:Pchls_fulib.Library.t ->
  time_limit:int ->
  ?power_limit:float ->
  Pchls_dfg.Graph.t ->
  outcome

val policy_to_string : policy -> string
val pp_stats : Format.formatter -> stats -> unit
