(* The override is an [Atomic] so test domains spawned after [set] observe
   it without a data race. *)
let override : string option Atomic.t = Atomic.make None

let set faults = Atomic.set override faults

let armed fault =
  let listed = function
    | None -> false
    | Some spec -> List.mem fault (String.split_on_char ',' spec)
  in
  match Atomic.get override with
  | Some _ as o -> listed o
  | None -> listed (Sys.getenv_opt "PCHLS_CHAOS")
