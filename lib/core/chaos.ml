module Fault = Pchls_resil.Fault

let set = Fault.set
let armed = Fault.armed
