module Graph = Pchls_dfg.Graph
module Module_spec = Pchls_fulib.Module_spec
module Schedule = Pchls_sched.Schedule
module Profile = Pchls_power.Profile
module Diag = Pchls_diag.Diag
module Int_map = Map.Make (Int)

type instance = {
  id : int;
  spec : Module_spec.t;
  ops : (int * int) list;
}

type area_breakdown = {
  fu : float;
  registers : float;
  mux : float;
  total : float;
}

type t = {
  graph : Graph.t;
  time_limit : int;
  power_limit : float;
  instances : instance list;
  schedule : Schedule.t;
  binding : int Int_map.t; (* op -> instance id *)
  register_allocation : int list array;
  mux_inputs : Interconnect.summary;
  area : area_breakdown;
}

let graph d = d.graph
let time_limit d = d.time_limit
let power_limit d = d.power_limit
let instances d = d.instances
let schedule d = d.schedule

let instance_of d op =
  match Int_map.find_opt op d.binding with
  | Some i -> List.nth d.instances i
  | None -> raise Not_found

let info d op =
  let spec = (instance_of d op).spec in
  { Schedule.latency = spec.Module_spec.latency; power = spec.Module_spec.power }

let register_allocation d = d.register_allocation
let register_count d = Array.length d.register_allocation
let mux_inputs d = d.mux_inputs
let area d = d.area

let profile d =
  Schedule.profile d.schedule ~info:(info d) ~horizon:d.time_limit

let makespan d = Schedule.makespan d.schedule ~info:(info d)

let energy_breakdown d =
  List.map
    (fun i ->
      ( i.id,
        float_of_int (List.length i.ops)
        *. Module_spec.energy i.spec ))
    d.instances

let energy d = List.fold_left (fun acc (_, e) -> acc +. e) 0. (energy_breakdown d)

(* Execution intervals on one instance must not overlap. *)
let overlap_on_instance spec ops =
  let d = spec.Module_spec.latency in
  let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) ops in
  let rec scan = function
    | (op1, t1) :: ((op2, t2) :: _ as rest) ->
      if t1 + d > t2 then Some (op1, op2) else scan rest
    | [ _ ] | [] -> None
  in
  scan sorted

let assemble ~cost_model ~graph ~time_limit ~power_limit ~instances =
  let ( let* ) = Result.bind in
  (* Every assembly error renders a diagnostic, so messages carry the same
     stable codes as the Pchls_analysis checkers (see docs/DIAGNOSTICS.md). *)
  let err d = Error (Diag.to_string d) in
  let instances =
    List.mapi
      (fun id (spec, ops) ->
        { id; spec; ops = List.sort (fun (_, a) (_, b) -> Int.compare a b) ops })
      instances
  in
  (* Binding: every operation on exactly one instance, kinds implemented. *)
  let* binding =
    List.fold_left
      (fun acc inst ->
        let* b = acc in
        List.fold_left
          (fun acc (op, _) ->
            let* b = acc in
            if not (Graph.mem graph op) then
              err
                (Diag.errorf ~code:"BND006" ~layer:Binding
                   ~entity:(Instance inst.id)
                   "instance %d (%s) binds unknown op %d" inst.id
                   inst.spec.Module_spec.name op)
            else
              match Int_map.find_opt op b with
              | Some first ->
                err
                  (Diag.errorf ~code:"BND005" ~layer:Binding ~entity:(Node op)
                     "op %d bound to instances %d and %d" op first inst.id)
              | None ->
                if
                  not (Module_spec.implements inst.spec (Graph.kind graph op))
                then
                  err
                    (Diag.errorf ~code:"BND002" ~layer:Binding
                       ~entity:(Node op)
                       "op %d (%s) not implementable by module %s of instance \
                        %d"
                       op
                       (Pchls_dfg.Op.to_string (Graph.kind graph op))
                       inst.spec.Module_spec.name inst.id)
                else Ok (Int_map.add op inst.id b))
          (Ok b) inst.ops)
      (Ok Int_map.empty) instances
  in
  let* () =
    if Int_map.cardinal binding = Graph.node_count graph then Ok ()
    else
      let missing =
        List.filter (fun id -> not (Int_map.mem id binding)) (Graph.node_ids graph)
      in
      err
        (Diag.errorf ~code:"BND007" ~layer:Binding ~entity:Diag.Design
           "unbound operations: %s"
           (String.concat ", " (List.map string_of_int missing)))
  in
  let* () =
    List.fold_left
      (fun acc inst ->
        let* () = acc in
        match overlap_on_instance inst.spec inst.ops with
        | Some (a, b) ->
          err
            (Diag.errorf ~code:"BND001" ~layer:Binding
               ~entity:(Instance inst.id)
               "ops %d and %d overlap on instance %d (%s)" a b inst.id
               inst.spec.Module_spec.name)
        | None -> Ok ())
      (Ok ()) instances
  in
  let schedule =
    List.fold_left
      (fun s inst ->
        List.fold_left (fun s (op, t) -> Schedule.set s op t) s inst.ops)
      Schedule.empty instances
  in
  let inst_arr = Array.of_list instances in
  let info op =
    let spec = inst_arr.(Int_map.find op binding).spec in
    {
      Schedule.latency = spec.Module_spec.latency;
      power = spec.Module_spec.power;
    }
  in
  let* () =
    match
      Schedule.validate graph schedule ~info ~time_limit ~power_limit ()
    with
    | Ok () -> Ok ()
    | Error ds -> (
      match List.filter (fun d -> d.Diag.severity = Diag.Error) ds with
      | d :: _ -> Error (Diag.to_string d)
      | [] -> Error "validation failed")
  in
  let register_allocation =
    Regalloc.left_edge (Regalloc.lifetimes graph schedule ~info)
  in
  let mux_inputs =
    Interconnect.estimate graph
      ~binding:(fun op -> Int_map.find op binding)
      ~instance_ops:(fun i -> List.map fst inst_arr.(i).ops)
      ~register_of:(Regalloc.register_of register_allocation)
      ~num_instances:(Array.length inst_arr)
  in
  let fu =
    List.fold_left (fun acc i -> acc +. i.spec.Module_spec.area) 0. instances
  in
  let registers =
    cost_model.Cost_model.register_area
    *. float_of_int (Array.length register_allocation)
  in
  let mux =
    cost_model.Cost_model.mux_input_area
    *. float_of_int (Interconnect.total mux_inputs)
  in
  let area = { fu; registers; mux; total = fu +. registers +. mux } in
  Ok
    {
      graph;
      time_limit;
      power_limit;
      instances;
      schedule;
      binding;
      register_allocation;
      mux_inputs;
      area;
    }

let pp ppf d =
  Format.fprintf ppf "@[<v>design for %s: T=%d P<=%g@," (Graph.name d.graph)
    d.time_limit d.power_limit;
  Format.fprintf ppf "area: fu=%.0f reg=%.0f mux=%.0f total=%.0f@," d.area.fu
    d.area.registers d.area.mux d.area.total;
  Format.fprintf ppf "%d instances, %d registers, %d mux inputs@,"
    (List.length d.instances)
    (register_count d)
    (Interconnect.total d.mux_inputs);
  List.iter
    (fun i ->
      Format.fprintf ppf "  [%d] %-9s %s@," i.id i.spec.Module_spec.name
        (String.concat " "
           (List.map
              (fun (op, t) ->
                Printf.sprintf "%s@%d" (Graph.node_name d.graph op) t)
              i.ops)))
    d.instances;
  Format.fprintf ppf "@]"
