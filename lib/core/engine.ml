module Graph = Pchls_dfg.Graph
module Op = Pchls_dfg.Op
module Library = Pchls_fulib.Library
module Module_spec = Pchls_fulib.Module_spec
module Schedule = Pchls_sched.Schedule
module Pasap = Pchls_sched.Pasap
module Palap = Pchls_sched.Palap
module Profile = Pchls_power.Profile
module Trace = Pchls_obs.Trace
module Metrics = Pchls_obs.Metrics
module Budget = Pchls_resil.Budget

let src = Logs.Src.create "pchls.engine" ~doc:"synthesis engine decisions"

module Log = (val Logs.src_log src : Logs.LOG)

let m_runs = Metrics.counter "engine.runs"
let m_iterations = Metrics.counter "engine.iterations"
let m_gain_evaluated = Metrics.counter "clique.gain_evaluated"
let m_backtracks = Metrics.counter "engine.backtracks"
let m_merges = Metrics.counter "engine.merges"
let m_retypes = Metrics.counter "engine.retype_merges"
let m_fresh = Metrics.counter "engine.new_instances"
let m_upgrades = Metrics.counter "engine.default_upgrades"
let m_infeasible = Metrics.counter "engine.infeasible"
let m_forced = Metrics.counter "engine.forced_commits"
let m_partials = Metrics.counter "engine.deadline_partials"

type policy = Min_power | Min_area | Min_latency

type completion =
  | Complete
  | Deadline_exceeded of { reason : Budget.reason; forced : int }

type stats = {
  decisions : int;
  merges : int;
  retype_merges : int;
  new_instances : int;
  backtracks : int;
  default_upgrades : int;
  completion : completion;
}

type outcome = Synthesized of Design.t * stats | Infeasible of { reason : string }

let policy_to_string = function
  | Min_power -> "min-power"
  | Min_area -> "min-area"
  | Min_latency -> "min-latency"

let reason_token = function
  | Budget.Wall_clock -> "wall-clock"
  | Budget.Iterations -> "iterations"
  | Budget.Cancelled -> "cancelled"

let pp_stats ppf s =
  Format.fprintf ppf
    "decisions=%d merges=%d retypes=%d new=%d backtracks=%d upgrades=%d"
    s.decisions s.merges s.retype_merges s.new_instances s.backtracks
    s.default_upgrades;
  (* Only partial results grow the line, so complete runs render exactly as
     they always did (golden outputs depend on it). *)
  match s.completion with
  | Complete -> ()
  | Deadline_exceeded { reason; forced } ->
    Format.fprintf ppf " partial=%s forced=%d" (reason_token reason) forced

type inst_state = {
  inst_id : int;
  mutable spec : Module_spec.t;
  mutable placed : (int * int) list; (* (op, start), unsorted *)
}

type decision =
  | Merge of { op : int; inst : inst_state; start : int; retype : Module_spec.t option }
  | Fresh of { op : int; spec : Module_spec.t; start : int }

(* Mutable synthesis state threaded through one [run]. *)
type state = {
  budget : Budget.t option;
  g : Graph.t;
  lib : Library.t;
  time_limit : int;
  power_limit : float;
  cost_model : Cost_model.t;
  default_spec : (int, Module_spec.t) Hashtbl.t; (* per unassigned op *)
  assigned : (int, inst_state * int) Hashtbl.t; (* op -> instance, start *)
  mutable instances : inst_state list; (* newest first *)
  mutable next_inst : int;
  caps : (string, int) Hashtbl.t; (* per-module instance caps *)
  mutable time_locked : bool;
  locked_times : (int, int) Hashtbl.t; (* valid once time_locked *)
  assigned_profile : Profile.t; (* power of committed ops only *)
  mutable n_merges : int;
  mutable n_retypes : int;
  mutable n_fresh : int;
  mutable n_backtracks : int;
  mutable n_upgrades : int;
}

let spec_info (m : Module_spec.t) =
  { Schedule.latency = m.latency; power = m.power }

let info st op =
  match Hashtbl.find_opt st.assigned op with
  | Some (inst, _) -> spec_info inst.spec
  | None -> spec_info (Hashtbl.find st.default_spec op)

let unassigned st =
  List.filter (fun op -> not (Hashtbl.mem st.assigned op)) (Graph.node_ids st.g)

let locked_list st =
  let committed =
    Hashtbl.fold (fun op (_, t) acc -> (op, t) :: acc) st.assigned []
  in
  if st.time_locked then
    Hashtbl.fold
      (fun op t acc ->
        if Hashtbl.mem st.assigned op then acc else (op, t) :: acc)
      st.locked_times committed
  else committed

(* Wall-clock / cancellation interrupts only: the iteration cap is checked
   at engine-iteration boundaries, not inside schedulers or default
   selection, so a [max_iters] budget still lets each iteration finish. *)
let interrupted st =
  match st.budget with None -> None | Some b -> Budget.interrupted b

let cancelled st () = interrupted st <> None

let run_pasap st =
  Pasap.run st.g ~info:(info st) ~horizon:st.time_limit
    ~power_limit:st.power_limit ~locked:(locked_list st)
    ~cancelled:(cancelled st) ()

let run_palap st =
  Palap.run st.g ~info:(info st) ~horizon:st.time_limit
    ~power_limit:st.power_limit ~locked:(locked_list st)
    ~cancelled:(cancelled st) ()

(* --- initial default-module selection ------------------------------- *)

let ancestors g op =
  let seen = Hashtbl.create 16 in
  let rec visit acc op =
    List.fold_left
      (fun acc p ->
        if Hashtbl.mem seen p then acc
        else begin
          Hashtbl.replace seen p ();
          visit (p :: acc) p
        end)
      acc (Graph.preds g op)
  in
  visit [] op

(* If the default-policy schedule misses the time constraint, promote the
   blocking operation (or one of its ancestors) to the fastest module whose
   power still fits under the limit. *)
let deadline_before_feasible r =
  Printf.sprintf
    "deadline exceeded before a feasible design was found (%s)"
    (Budget.reason_to_string r)

let rec settle_defaults st attempts =
  match run_pasap st with
  | Pasap.Feasible s -> Ok s
  | Pasap.Infeasible _ when interrupted st <> None ->
    (* The scheduler was cancelled mid-run: there is no valid schedule yet,
       so there is nothing to wind down to. *)
    Error
      (deadline_before_feasible
         (Option.get (interrupted st)))
  | Pasap.Infeasible { node; reason } ->
    if attempts <= 0 then
      Error
        (Printf.sprintf "default module selection cannot meet constraints: %s"
           reason)
    else
      let upgradable op =
        let current = Hashtbl.find st.default_spec op in
        let faster =
          List.filter
            (fun (m : Module_spec.t) ->
              m.latency < current.Module_spec.latency
              && m.power <= st.power_limit +. Profile.eps)
            (Library.candidates st.lib (Graph.kind st.g op))
        in
        match
          List.sort
            (fun (a : Module_spec.t) (b : Module_spec.t) ->
              Int.compare a.latency b.latency)
            faster
        with
        | m :: _ -> Some m
        | [] -> None
      in
      let rec first_upgrade = function
        | [] -> None
        | op :: rest -> (
          match upgradable op with
          | Some m -> Some (op, m)
          | None -> first_upgrade rest)
      in
      (match first_upgrade (node :: ancestors st.g node) with
      | Some (op, m) ->
        Hashtbl.replace st.default_spec op m;
        st.n_upgrades <- st.n_upgrades + 1;
        Metrics.incr m_upgrades;
        settle_defaults st (attempts - 1)
      | None ->
        Error
          (Printf.sprintf
             "infeasible: node %d (%s) cannot be scheduled (%s) and no faster \
              module fits the power limit"
             node (Graph.node_name st.g node) reason))

(* --- candidate generation ------------------------------------------- *)

let spec_count st name =
  List.length
    (List.filter (fun i -> i.spec.Module_spec.name = name) st.instances)

(* Can another instance of module [name] exist? Used for fresh instances and
   for retypes (which net one more instance of the target type). *)
let under_cap st name =
  match Hashtbl.find_opt st.caps name with
  | None -> true
  | Some cap -> spec_count st name < cap

let arity st op = List.length (Graph.preds st.g op)

let mux_penalty st op =
  st.cost_model.Cost_model.mux_input_area *. float_of_int (arity st op)

(* Earliest precedence-feasible start of [op], with predecessor latencies
   optionally overridden for a retype trial on instance [trial]. *)
let earliest_start st pasap ?trial op =
  let latency p =
    match trial with
    | Some (inst, (m : Module_spec.t))
      when List.exists (fun (q, _) -> q = p) inst.placed ->
      m.latency
    | Some _ | None -> (info st p).Schedule.latency
  in
  List.fold_left
    (fun acc p -> max acc (Schedule.start pasap p + latency p))
    0 (Graph.preds st.g op)

(* Latest cycle by which [op] must have finished so that every successor can
   still start at its palap time. *)
let deadline st palap op =
  List.fold_left
    (fun acc s -> min acc (Schedule.start palap s))
    st.time_limit (Graph.succs st.g op)

(* Busy-interval check: can [op] run on [inst] (under latency [d]) starting
   at some cycle in [lo, hi]? Returns the earliest such start. *)
let earliest_slot inst ~d ~lo ~hi =
  let busy = List.sort (fun (_, a) (_, b) -> Int.compare a b) inst.placed in
  let rec scan t =
    if t > hi then None
    else
      let clash =
        List.find_opt (fun (_, tb) -> t < tb + d && tb < t + d) busy
      in
      match clash with
      | None -> Some t
      | Some (_, tb) -> scan (tb + d)
  in
  scan lo

(* The latest such start instead. *)
let latest_slot inst ~d ~lo ~hi =
  let rec scan t =
    if t < lo then None
    else
      let clash =
        List.find_opt (fun (_, tb) -> t < tb + d && tb < t + d) inst.placed
      in
      match clash with
      | None -> Some t
      | Some (_, tb) -> scan (tb - d)
  in
  scan hi

(* Committing an operation pins a start time, which caps the windows of its
   still-unassigned neighbours. An operation whose predecessors are still
   free but whose successors are all placed (or are primary outputs, which
   are placed late anyway) should therefore sit as LATE as possible;
   the default is as early as possible. This mirrors the palap placement of
   sinks in [fresh_candidate]. *)
let prefer_late st op =
  (match Graph.succs st.g op with
  | [] -> true
  | succs ->
    List.for_all
      (fun s ->
        Hashtbl.mem st.assigned s
        || (match Graph.kind st.g s with
           | Op.Output -> true
           | Op.Add | Op.Sub | Op.Mult | Op.Comp | Op.Input -> false))
      succs)
  && List.exists (fun p -> not (Hashtbl.mem st.assigned p)) (Graph.preds st.g op)

(* Power pre-check against the committed operations only. For a retype the
   instance's existing operations change power and latency, so rebuild its
   contribution on a scratch copy. *)
let power_precheck st inst retype ~start ~d ~power =
  match retype with
  | None ->
    Profile.fits st.assigned_profile ~start ~latency:d ~power
      ~limit:st.power_limit
  | Some (m : Module_spec.t) ->
    let scratch = Profile.copy st.assigned_profile in
    let old = inst.spec in
    List.iter
      (fun (_, t) ->
        Profile.remove scratch ~start:t ~latency:old.Module_spec.latency
          ~power:old.Module_spec.power)
      inst.placed;
    let ok = ref true in
    List.iter
      (fun (_, t) ->
        if t + m.latency > st.time_limit then ok := false
        else if
          Profile.fits scratch ~start:t ~latency:m.latency ~power:m.power
            ~limit:st.power_limit
        then Profile.add scratch ~start:t ~latency:m.latency ~power:m.power
        else ok := false)
      inst.placed;
    !ok
    && Profile.fits scratch ~start ~latency:d ~power ~limit:st.power_limit

(* The cheapest library module implementing every kind in [kinds], other
   than [current]; [None] when none exists or none fits the power limit. *)
let retype_spec st current kinds =
  let implements_all (m : Module_spec.t) =
    List.for_all (Module_spec.implements m) kinds
  in
  let candidates =
    List.filter
      (fun (m : Module_spec.t) ->
        implements_all m
        && (not (Module_spec.equal m current))
        && m.power <= st.power_limit +. Profile.eps)
      (Library.to_list st.lib)
  in
  match
    List.sort
      (fun (a : Module_spec.t) (b : Module_spec.t) -> Float.compare a.area b.area)
      candidates
  with
  | m :: _ -> Some m
  | [] -> None

(* All timing constraints of a retype: every already-placed op keeps its
   start but runs [m.latency] cycles, so intervals must stay disjoint and
   each must still meet its successors' deadlines. *)
let retype_timing_ok st palap inst (m : Module_spec.t) =
  let d = m.latency in
  let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) inst.placed in
  let rec disjoint = function
    | (_, t1) :: ((_, t2) :: _ as rest) -> t1 + d <= t2 && disjoint rest
    | [ _ ] | [] -> true
  in
  disjoint sorted
  && List.for_all (fun (op, t) -> t + d <= deadline st palap op) sorted

let gain_of st = function
  | Fresh { op; _ } ->
    -.(Hashtbl.find st.default_spec op).Module_spec.area
  | Merge { op; inst; retype; _ } ->
    let saved = (Hashtbl.find st.default_spec op).Module_spec.area in
    let upgrade_cost =
      match retype with
      | Some (m : Module_spec.t) -> m.area -. inst.spec.Module_spec.area
      | None -> 0.
    in
    saved -. upgrade_cost -. mux_penalty st op

(* Best merge of [op] onto one specific [inst], or [None]. Split out from
   the all-instances enumeration so the candidate store can evaluate a
   single (operation, instance) entry on demand. *)
let merge_candidate st pasap palap op inst =
  let kind = Graph.kind st.g op in
  let locked_at = Hashtbl.find_opt st.locked_times op in
  let same_spec_ok = Module_spec.implements inst.spec kind in
  let consider (m : Module_spec.t) retype =
    let d = m.Module_spec.latency in
    let lo = earliest_start st pasap ?trial:(Option.map (fun r -> (inst, r)) retype) op in
    let hi = deadline st palap op - d in
    let lo, hi =
      match (st.time_locked, locked_at) with
      | true, Some t -> (max lo t, min hi t)
      | true, None | false, _ -> (lo, hi)
    in
    if st.time_locked && not (Module_spec.equal m (Hashtbl.find st.default_spec op))
    then None (* locked mode must not change the power profile shape *)
    else
      let placements =
        if (not st.time_locked) && prefer_late st op then
          [ latest_slot inst ~d ~lo ~hi; earliest_slot inst ~d ~lo ~hi ]
        else [ earliest_slot inst ~d ~lo ~hi ]
      in
      List.find_map
        (fun slot ->
          match slot with
          | None -> None
          | Some start ->
            if
              power_precheck st inst retype ~start ~d
                ~power:m.Module_spec.power
            then Some (Merge { op; inst; start; retype })
            else None)
        placements
  in
  if same_spec_ok then consider inst.spec None
  else if st.time_locked then None
  else
    let kinds =
      kind
      :: List.map (fun (q, _) -> Graph.kind st.g q) inst.placed
      |> List.sort_uniq Op.compare
    in
    match retype_spec st inst.spec kinds with
    | Some m
      when retype_timing_ok st palap inst m
           && under_cap st m.Module_spec.name ->
      consider m (Some m)
    | Some _ | None -> None

let merge_candidates st pasap palap op =
  List.filter_map (merge_candidate st pasap palap op) (List.rev st.instances)

(* A fresh instance usually starts its operation at the pasap time (as early
   as possible). When [prefer_late] holds (sinks, and operations whose only
   unplaced neighbours are predecessors) it takes the palap time instead:
   committing such an operation early would needlessly pin the makespan and
   erase the predecessors' slack, killing future sharing. In locked mode the
   pasap time *is* the locked time and must be kept. *)
let fresh_candidate st pasap palap op =
  let default = Hashtbl.find st.default_spec op in
  let spec =
    if under_cap st default.Module_spec.name then Some default
    else if st.time_locked then None
      (* a different module would change the locked power profile *)
    else
      (* The default module type is capped out: fall back to the cheapest
         other candidate still under its cap and power limit. Its latency
         may differ from the default used by pasap; the post-commit
         revalidation guards the schedule. *)
      Library.candidates st.lib (Graph.kind st.g op)
      |> List.filter (fun (m : Module_spec.t) ->
             under_cap st m.Module_spec.name
             && m.power <= st.power_limit +. Profile.eps)
      |> List.sort (fun (a : Module_spec.t) (b : Module_spec.t) ->
             Float.compare a.area b.area)
      |> function
      | m :: _ -> Some m
      | [] -> None
  in
  match spec with
  | None -> None
  | Some spec ->
    let late = Schedule.start palap op in
    let start =
      if
        (not st.time_locked)
        && prefer_late st op
        && Profile.fits st.assigned_profile ~start:late
             ~latency:spec.Module_spec.latency ~power:spec.Module_spec.power
             ~limit:st.power_limit
      then late
      else Schedule.start pasap op
    in
    Some (Fresh { op; spec; start })

let slack pasap palap op = Schedule.start palap op - Schedule.start pasap op

(* Equal-gain ties resolve in dataflow order (earlier pasap start first):
   committing a consumer before its producer would cap the producer's
   deadline and destroy sharing opportunities. *)
let decision_order st pasap palap a b =
  let ga = gain_of st a and gb = gain_of st b in
  if not (Float.equal ga gb) then Float.compare gb ga
  else
    let op_of = function Merge { op; _ } | Fresh { op; _ } -> op in
    let ta = Schedule.start pasap (op_of a)
    and tb = Schedule.start pasap (op_of b) in
    if ta <> tb then Int.compare ta tb
    else
    let sa = slack pasap palap (op_of a) and sb = slack pasap palap (op_of b) in
    if sa <> sb then Int.compare sa sb
    else if op_of a <> op_of b then Int.compare (op_of a) (op_of b)
    else
      let rank = function
        | Merge { retype = None; _ } -> 0
        | Merge { retype = Some _; _ } -> 1
        | Fresh _ -> 2
      in
      let ra = rank a and rb = rank b in
      if ra <> rb then Int.compare ra rb
      else
        let inst_rank = function
          | Merge { inst; _ } -> inst.inst_id
          | Fresh _ -> max_int
        in
        Int.compare (inst_rank a) (inst_rank b)

(* Reference enumeration: every candidate of every unassigned operation,
   fully sorted. This is the pre-store selection rule; the store below must
   agree with its head on every iteration, and [self_check] asserts that it
   does. Only used for that oracle (and by equivalence tests) — the hot
   path is [select_decision]. *)
let candidates st pasap palap =
  let cands =
    List.concat_map
      (fun op ->
        let merges = merge_candidates st pasap palap op in
        match fresh_candidate st pasap palap op with
        | Some fresh -> fresh :: merges
        | None -> merges)
      (unassigned st)
  in
  List.sort (decision_order st pasap palap) cands

(* --- persistent candidate store --------------------------------------

   One entry per (operation, placement target), kept across iterations in
   buckets keyed by the decision's gain — the primary sort key of
   [decision_order]. Selection scans gain levels downward and, within the
   first level holding a feasible decision, breaks ties with the full
   [decision_order]; since every candidate of a strictly higher gain was
   found infeasible, this reproduces exactly the head of the old full
   re-sort without enumerating the other levels.

   Gains are cached, not recomputed wholesale: a Fresh entry's gain
   (-default area) and a same-module merge's gain (saved area - mux
   penalty) never change after default selection settles, and a
   retype-merge's gain only moves when the instance's module or kind set
   changes. Kind sets only grow and only push the cheapest covering module
   upward, so a stale cached gain can only be too HIGH — the scan detects
   that (recomputed gain <> bucket key) and sinks the entry to its true
   level, preserving the downward-scan invariant. The one event that can
   RAISE a gain — a committed retype changing [inst.spec] — triggers an
   eager regrade of that instance's entries instead. Entries whose
   operation has been assigned are dropped lazily when a scan meets them;
   this is safe because trial commits are always reverted before the next
   scan runs.

   An entry whose retype target disappears (no library module covers the
   grown kind set) is parked on its instance and revisited only if a
   retype changes that instance's module — the only event that can bring
   a target back. *)

module Gain_map = Map.Make (Float)

type ctarget = T_fresh | T_inst of inst_state
type centry = { c_op : int; c_target : ctarget }

type store = {
  mutable levels : centry list ref Gain_map.t;
  parked : (int, centry list ref) Hashtbl.t; (* inst_id -> dead retypes *)
}

(* Current gain of an entry, mirroring [gain_of] on the decision the entry
   would produce; [None] when no retype target exists (park it). *)
let entry_gain st e =
  let default op = (Hashtbl.find st.default_spec op : Module_spec.t) in
  match e.c_target with
  | T_fresh -> Some (-.(default e.c_op).Module_spec.area)
  | T_inst inst ->
    let kind = Graph.kind st.g e.c_op in
    let saved = (default e.c_op).Module_spec.area in
    if Module_spec.implements inst.spec kind then
      Some (saved -. mux_penalty st e.c_op)
    else (
      let kinds =
        kind :: List.map (fun (q, _) -> Graph.kind st.g q) inst.placed
        |> List.sort_uniq Op.compare
      in
      match retype_spec st inst.spec kinds with
      | Some (m : Module_spec.t) ->
        let upgrade_cost = m.area -. inst.spec.Module_spec.area in
        Some (saved -. upgrade_cost -. mux_penalty st e.c_op)
      | None -> None)

let store_insert sto gain e =
  match Gain_map.find_opt gain sto.levels with
  | Some b -> b := e :: !b
  | None -> sto.levels <- Gain_map.add gain (ref [ e ]) sto.levels

let store_park sto inst e =
  let b =
    match Hashtbl.find_opt sto.parked inst.inst_id with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.replace sto.parked inst.inst_id b;
      b
  in
  b := e :: !b

let store_add st sto e =
  match entry_gain st e with
  | Some g -> store_insert sto g e
  | None -> (
    match e.c_target with
    | T_inst inst -> store_park sto inst e
    | T_fresh -> assert false (* fresh gains always exist *))

let store_init st =
  let sto = { levels = Gain_map.empty; parked = Hashtbl.create 16 } in
  List.iter
    (fun op ->
      store_add st sto { c_op = op; c_target = T_fresh };
      List.iter
        (fun inst -> store_add st sto { c_op = op; c_target = T_inst inst })
        st.instances)
    (unassigned st);
  sto

(* A committed retype can raise the gains of other entries on the same
   instance (the upgrade cost shrinks), which would break the
   stale-gains-only-sink invariant — so pull every entry of that instance
   out of the buckets (and its parked list) and re-add them at their
   recomputed gains. Retypes are rare, so the full-store sweep is cheap
   amortised. *)
let store_regrade_inst st sto inst =
  let mine = ref [] in
  sto.levels <-
    Gain_map.filter_map
      (fun _ b ->
        let keep, pulled =
          List.partition
            (fun e ->
              match e.c_target with
              | T_inst i -> not (i == inst)
              | T_fresh -> true)
            !b
        in
        mine := pulled @ !mine;
        if keep = [] then None
        else begin
          b := keep;
          Some b
        end)
      sto.levels;
  (match Hashtbl.find_opt sto.parked inst.inst_id with
  | Some b ->
    mine := !b @ !mine;
    Hashtbl.remove sto.parked inst.inst_id
  | None -> ());
  List.iter
    (fun e -> if not (Hashtbl.mem st.assigned e.c_op) then store_add st sto e)
    !mine

(* Store maintenance after a VALIDATED commit (never after a trial that
   may be reverted — reverted commits must leave the store untouched). *)
let store_note_commit st sto decision =
  match decision with
  | Fresh _ -> (
    (* The commit just pushed the new instance onto the head. *)
    match st.instances with
    | inst :: _ ->
      List.iter
        (fun op -> store_add st sto { c_op = op; c_target = T_inst inst })
        (unassigned st)
    | [] -> assert false)
  | Merge { inst; retype = Some _; _ } -> store_regrade_inst st sto inst
  | Merge { retype = None; _ } -> ()

(* Head of the old full re-sort, computed by descending the gain levels.
   Within a level every entry is revalidated (dead entries dropped, sunken
   gains moved) and evaluated against the current schedules; the first
   level with feasible decisions yields the winner under the full
   [decision_order]. Feasibility is re-established every call — only the
   gain keys persist between iterations. *)
let select_decision st sto pasap palap =
  let rec go bound =
    match Gain_map.find_last_opt (fun k -> k < bound) sto.levels with
    | None -> None
    | Some (gain, bucket) ->
      let feasible = ref [] in
      let keep = ref [] in
      List.iter
        (fun e ->
          if Hashtbl.mem st.assigned e.c_op then () (* lazily dropped *)
          else
            match entry_gain st e with
            | None -> (
              match e.c_target with
              | T_inst inst -> store_park sto inst e
              | T_fresh -> assert false)
            | Some g when not (Float.equal g gain) ->
              store_insert sto g e (* sank; rescanned at its new level *)
            | Some _ -> (
              keep := e :: !keep;
              let d =
                match e.c_target with
                | T_fresh -> fresh_candidate st pasap palap e.c_op
                | T_inst inst -> merge_candidate st pasap palap e.c_op inst
              in
              match d with
              | Some d -> feasible := d :: !feasible
              | None -> ()))
        !bucket;
      (match !keep with
      | [] -> sto.levels <- Gain_map.remove gain sto.levels
      | kept -> bucket := List.rev kept);
      Metrics.incr ~by:(List.length !feasible) m_gain_evaluated;
      (match !feasible with
      | [] -> go gain
      | fs -> Some (List.hd (List.sort (decision_order st pasap palap) fs)))
  in
  go infinity

(* Structural agreement between the store's pick and the reference
   enumeration's head, for the [self_check] oracle. Instances compare by
   identity — the store and the enumeration share the same records. *)
let same_decision a b =
  match (a, b) with
  | ( Merge { op = oa; inst = ia; start = sa; retype = ra },
      Merge { op = ob; inst = ib; start = sb; retype = rb } ) ->
    oa = ob && ia == ib && sa = sb
    && (match (ra, rb) with
       | None, None -> true
       | Some x, Some y -> Module_spec.equal x y
       | None, Some _ | Some _, None -> false)
  | ( Fresh { op = oa; spec = ma; start = sa },
      Fresh { op = ob; spec = mb; start = sb } ) ->
    oa = ob && Module_spec.equal ma mb && sa = sb
  | Merge _, Fresh _ | Fresh _, Merge _ -> false

(* --- commit / undo --------------------------------------------------- *)

type undo = { revert : unit -> unit }

let commit st decision =
  match decision with
  | Fresh { op; spec; start } ->
    let inst = { inst_id = st.next_inst; spec; placed = [ (op, start) ] } in
    st.next_inst <- st.next_inst + 1;
    st.instances <- inst :: st.instances;
    Hashtbl.replace st.assigned op (inst, start);
    Profile.add st.assigned_profile ~start ~latency:spec.Module_spec.latency
      ~power:spec.Module_spec.power;
    {
      revert =
        (fun () ->
          Profile.remove st.assigned_profile ~start
            ~latency:spec.Module_spec.latency ~power:spec.Module_spec.power;
          Hashtbl.remove st.assigned op;
          st.instances <- List.filter (fun i -> i != inst) st.instances;
          st.next_inst <- st.next_inst - 1);
    }
  | Merge { op; inst; start; retype } ->
    let old_spec = inst.spec in
    (match retype with
    | Some m ->
      (* Re-account the existing operations under the new module. *)
      List.iter
        (fun (_, t) ->
          Profile.remove st.assigned_profile ~start:t
            ~latency:old_spec.Module_spec.latency
            ~power:old_spec.Module_spec.power)
        inst.placed;
      inst.spec <- m;
      List.iter
        (fun (_, t) ->
          Profile.add st.assigned_profile ~start:t ~latency:m.Module_spec.latency
            ~power:m.Module_spec.power)
        inst.placed
    | None -> ());
    inst.placed <- (op, start) :: inst.placed;
    Hashtbl.replace st.assigned op (inst, start);
    Profile.add st.assigned_profile ~start
      ~latency:inst.spec.Module_spec.latency ~power:inst.spec.Module_spec.power;
    {
      revert =
        (fun () ->
          Profile.remove st.assigned_profile ~start
            ~latency:inst.spec.Module_spec.latency
            ~power:inst.spec.Module_spec.power;
          inst.placed <- List.filter (fun (q, _) -> q <> op) inst.placed;
          Hashtbl.remove st.assigned op;
          match retype with
          | Some m ->
            List.iter
              (fun (_, t) ->
                Profile.remove st.assigned_profile ~start:t
                  ~latency:m.Module_spec.latency ~power:m.Module_spec.power)
              inst.placed;
            inst.spec <- old_spec;
            List.iter
              (fun (_, t) ->
                Profile.add st.assigned_profile ~start:t
                  ~latency:old_spec.Module_spec.latency
                  ~power:old_spec.Module_spec.power)
              inst.placed
          | None -> ());
    }

let note_commit st decision =
  (match decision with
  | Fresh _ ->
    st.n_fresh <- st.n_fresh + 1;
    Metrics.incr m_fresh
  | Merge { retype = None; _ } ->
    st.n_merges <- st.n_merges + 1;
    Metrics.incr m_merges
  | Merge { retype = Some _; _ } ->
    st.n_retypes <- st.n_retypes + 1;
    Metrics.incr m_retypes);
  if Trace.observed () then
    Trace.instant ~cat:"engine"
      ~args:
        [
          ( "decision",
            match decision with
            | Merge { retype = None; _ } -> "merge"
            | Merge { retype = Some _; _ } -> "retype-merge"
            | Fresh _ -> "fresh" );
          ( "op",
            string_of_int
              (match decision with Merge { op; _ } | Fresh { op; _ } -> op) );
          ("gain", Printf.sprintf "%.1f" (gain_of st decision));
        ]
      "engine.commit"

(* --- main loop -------------------------------------------------------- *)

let lock_unassigned st valid_pasap =
  st.time_locked <- true;
  Hashtbl.reset st.locked_times;
  List.iter
    (fun op -> Hashtbl.replace st.locked_times op (Schedule.start valid_pasap op))
    (unassigned st)

(* Self-check: after a backtrack-and-lock event the engine trusts
   [valid_pasap] as-is for every remaining decision, so a silently invalid
   schedule here would corrupt everything downstream. Re-lint it. *)
let self_check_lock st s =
  match
    Schedule.validate st.g s ~info:(info st) ~time_limit:st.time_limit
      ~power_limit:st.power_limit ()
  with
  | Ok () -> Ok ()
  | Error ds ->
    Error
      (Printf.sprintf
         "self-check: schedule locked after backtrack fails lint: %s"
         (String.concat "; "
            (List.map Pchls_diag.Diag.to_string
               (List.filteri (fun i _ -> i < 3) ds))))

let run ?(cost_model = Cost_model.default) ?(policy = Min_power)
    ?(max_instances = []) ?(seed_instances = []) ?(self_check = false)
    ?(preflight = false) ?deadline ~library ~time_limit
    ?(power_limit = infinity) g =
  if time_limit < 1 then invalid_arg "Engine.run: time_limit < 1";
  if power_limit <= 0. then invalid_arg "Engine.run: power_limit <= 0";
  List.iter
    (fun (name, cap) ->
      if cap < 0 then
        invalid_arg (Printf.sprintf "Engine.run: negative cap for %s" name);
      if Library.find library name = None then
        invalid_arg
          (Printf.sprintf "Engine.run: cap names unknown module %s" name))
    max_instances;
  (match Library.covers library g with
  | Ok () -> ()
  | Error kinds ->
    invalid_arg
      (Printf.sprintf "Engine.run: library covers no module for: %s"
         (String.concat ", " (List.map Op.to_string kinds))));
  (* Fault injection: dropping the limit here poisons every downstream
     consumer consistently — schedulers, gain tests and final assembly
     validation all agree the budget is unbounded, so the bug is invisible
     to self-checks and only a differential oracle catches it. *)
  let power_limit =
    if Pchls_resil.Fault.fires ~key:0 "engine.power-check" then infinity
    else power_limit
  in
  (* Optional static early-reject: a preflight certificate proves no
     schedule satisfies (T, P<), so the engine need not search at all. Uses
     the post-fault limit so chaos runs stay self-consistent. *)
  let static_reject =
    if not preflight then None
    else
      let module Preflight = Pchls_preflight.Preflight in
      let pf =
        Preflight.analyze ~exact_max_vertices:0 ~library ~time_limit
          ~power_limit g
      in
      Option.map
        (fun c ->
          Printf.sprintf "preflight: %s: %s"
            (Preflight.certificate_code c)
            (Preflight.certificate_to_string c))
        (Preflight.first_certificate pf)
  in
  match static_reject with
  | Some reason -> Infeasible { reason }
  | None ->
  Metrics.incr m_runs;
  (* The whole search is delimited so an escaping exception hits the
     flight-recorder crash hook before the caller unwinds further — the
     ring then holds the engine's last moments. *)
  let synthesize () =
    Trace.span ~cat:"engine" ~args:[ ("graph", Graph.name g) ] "engine.run"
    @@ fun () ->
  let select =
    match policy with
    | Min_power -> Library.min_power
    | Min_area -> Library.min_area
    | Min_latency -> Library.min_latency
  in
  let default_spec = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match select library (Graph.kind g op) with
      | Some m -> Hashtbl.replace default_spec op m
      | None -> assert false (* covered above *))
    (Graph.node_ids g);
  let seeds =
    List.mapi
      (fun i spec -> { inst_id = i; spec; placed = [] })
      seed_instances
  in
  let st =
    {
      budget = deadline;
      g;
      lib = library;
      time_limit;
      power_limit;
      cost_model;
      default_spec;
      assigned = Hashtbl.create 64;
      instances = List.rev seeds;
      next_inst = List.length seeds;
      caps =
        (let h = Hashtbl.create 8 in
         List.iter (fun (name, cap) -> Hashtbl.replace h name cap) max_instances;
         h);
      time_locked = false;
      locked_times = Hashtbl.create 64;
      assigned_profile = Profile.create ~horizon:time_limit;
      n_merges = 0;
      n_retypes = 0;
      n_fresh = 0;
      n_backtracks = 0;
      n_upgrades = 0;
    }
  in
  match settle_defaults st (Graph.node_count g + 5) with
  | Error reason ->
    Metrics.incr m_infeasible;
    Infeasible { reason }
  | Ok first_pasap ->
    (* One clique-partition iteration: evaluate every candidate gain, commit
       the best, re-schedule, and fall back to backtrack-and-lock when the
       commit kills feasibility. Pulled out of [iterate] so each iteration
       is its own trace span without nesting the whole tail under it. *)
    let sto = store_init st in
    (* Store pick, optionally cross-checked against the reference
       enumeration: any divergence is a selection bug, reported rather
       than silently synthesized through. *)
    let pick pasap palap =
      let picked = select_decision st sto pasap palap in
      if not self_check then Ok picked
      else
        let reference =
          match candidates st pasap palap with [] -> None | c :: _ -> Some c
        in
        match (picked, reference) with
        | None, None -> Ok picked
        | Some a, Some b when same_decision a b -> Ok picked
        | Some _, Some _ | Some _, None | None, Some _ ->
          Error
            "self-check: candidate store selection diverges from the full \
             enumeration"
    in
    let step valid_pasap =
      let palap =
        match run_palap st with
        | Pasap.Feasible s -> s
        | Pasap.Infeasible _ -> valid_pasap (* degenerate windows *)
      in
      match pick valid_pasap palap with
      | Error e -> `Error e
      | Ok None ->
        let op =
          match unassigned st with op :: _ -> op | [] -> -1
        in
        `Error
          (Printf.sprintf
             "no feasible decision for operation %d (%s): instance caps \
              leave it no module to run on"
             op
             (Graph.node_name st.g op))
      | Ok (Some best) -> (
        Log.debug (fun m ->
            m "commit %s (gain %.1f)"
              (match best with
              | Merge { op; inst; start; retype } ->
                Printf.sprintf "merge op %d -> inst %d @%d%s" op inst.inst_id
                  start
                  (match retype with
                  | Some r -> " retype " ^ r.Module_spec.name
                  | None -> "")
              | Fresh { op; spec; start } ->
                Printf.sprintf "fresh op %d : %s @%d" op
                  spec.Module_spec.name start)
              (gain_of st best));
        let undo = commit st best in
        match run_pasap st with
        | Pasap.Feasible next_pasap ->
          note_commit st best;
          store_note_commit st sto best;
          `Continue next_pasap
        | Pasap.Infeasible _ when interrupted st <> None ->
          (* The re-schedule was cancelled by the deadline, not genuinely
             infeasible: undo the trial commit (it was never validated) and
             let [iterate] wind down from the last valid schedule. *)
          undo.revert ();
          `Deadline (Option.get (interrupted st))
        | Pasap.Infeasible { node; reason } ->
          Log.debug (fun m -> m "backtrack: node %d, %s" node reason);
          undo.revert ();
          st.n_backtracks <- st.n_backtracks + 1;
          Metrics.incr m_backtracks;
          if Trace.observed () then
            Trace.instant ~cat:"engine"
              ~args:[ ("node", string_of_int node); ("reason", reason) ]
              "engine.backtrack";
          lock_unassigned st valid_pasap;
          (match
             if self_check then self_check_lock st valid_pasap else Ok ()
           with
          | Error e -> `Error e
          | Ok () -> (
            (* In locked mode decisions keep the valid pasap's times and
               module choices, so the schedule stays feasible as-is. *)
            match pick valid_pasap valid_pasap with
            | Error e -> `Error e
            | Ok (Some locked_best) ->
              let _ = commit st locked_best in
              note_commit st locked_best;
              store_note_commit st sto locked_best;
              `Continue valid_pasap
            | Ok None ->
              `Error
                "no feasible decision after locking: instance caps leave \
                 some operation no module to run on")))
    in
    (* Anytime wind-down: commit every remaining operation as a fresh
       instance of its default module at its start time in the last valid
       pasap schedule. That schedule already places the unassigned
       operations with exactly these specs, so precedence and the power
       limit hold by construction — only sharing quality is lost (and
       [max_instances] caps may be exceeded by the forced fresh
       allocations, which partial results document rather than fail on). *)
    let force_complete valid_pasap reason =
      let remaining = unassigned st in
      List.iter
        (fun op ->
          let spec = Hashtbl.find st.default_spec op in
          let start = Schedule.start valid_pasap op in
          ignore (commit st (Fresh { op; spec; start })))
        remaining;
      let forced = List.length remaining in
      Metrics.incr ~by:forced m_forced;
      Metrics.incr m_partials;
      Log.info (fun m ->
          m "deadline (%s): forced %d remaining operation(s) to fresh \
             instances"
            (Budget.reason_to_string reason)
            forced);
      Deadline_exceeded { reason; forced }
    in
    let rec iterate valid_pasap =
      if unassigned st = [] then Ok Complete
      else
        match Option.bind st.budget Budget.check with
        | Some reason -> Ok (force_complete valid_pasap reason)
        | None -> begin
          Option.iter Budget.tick st.budget;
          Metrics.incr m_iterations;
          match
            Trace.span ~cat:"engine" "engine.iterate" (fun () ->
                step valid_pasap)
          with
          | `Continue next_pasap -> iterate next_pasap
          | `Deadline reason -> Ok (force_complete valid_pasap reason)
          | `Error reason -> Error reason
        end
    in
    (match iterate first_pasap with
    | Error reason ->
      Metrics.incr m_infeasible;
      Infeasible { reason }
    | Ok completion -> (
      let instances =
        List.rev st.instances
        |> List.filter (fun i -> i.placed <> [])
        |> List.map (fun i ->
               ( i.spec,
                 List.sort (fun (_, a) (_, b) -> Int.compare a b) i.placed ))
      in
      match
        Design.assemble ~cost_model ~graph:g ~time_limit ~power_limit
          ~instances
      with
      | Ok design ->
        Synthesized
          ( design,
            {
              decisions = st.n_merges + st.n_retypes + st.n_fresh;
              merges = st.n_merges;
              retype_merges = st.n_retypes;
              new_instances = st.n_fresh;
              backtracks = st.n_backtracks;
              default_upgrades = st.n_upgrades;
              completion;
            } )
      | Error reason ->
        Metrics.incr m_infeasible;
        Infeasible { reason = "final design validation failed: " ^ reason }))
  in
  (try synthesize ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Pchls_obs.Flight.note_crash ~origin:"engine.run" e;
     Printexc.raise_with_backtrace e bt)
