module Profile = Pchls_power.Profile
module Fingerprint = Pchls_cache.Fingerprint
module Store = Pchls_cache.Store
module Pool = Pchls_par.Pool
module Trace = Pchls_obs.Trace
module Metrics = Pchls_obs.Metrics
module Budget = Pchls_resil.Budget
module Fault = Pchls_resil.Fault

let m_points = Metrics.counter "explore.points"
let m_failed_points = Metrics.counter "explore.failed_points"

let h_point_ns =
  Metrics.histogram ~buckets:Metrics.ns_buckets "explore.point_ns"

module Preflight = Pchls_preflight.Preflight

type point = { time_limit : int; power_limit : float; result : result }

and result =
  | Feasible of { area : float; peak : float; design : Design.t }
  | Infeasible of string
  | Pruned of string
  | Failed of string

(* Bump whenever an engine change makes previously cached results wrong:
   every key embeds the salt, so old on-disk entries silently go stale. *)
let cache_salt = "pchls-engine-v1"

(* Pruned points are cached as ordinary [Store.Infeasible] entries under
   this reason prefix, so the store format is unchanged and non-preflight
   consumers still read them as (sound) infeasibility. *)
let pruned_prefix = "preflight: "

let prune_reason_of_cached reason =
  let n = String.length pruned_prefix in
  if
    String.length reason >= n
    && String.equal (String.sub reason 0 n) pruned_prefix
  then Some (String.sub reason n (String.length reason - n))
  else None

(* The cheap certificate-only configuration: no exact area search. Never
   raises — a malformed grid point (T < 1, P <= 0) falls through to the
   engine, which reports it per-point. *)
let static_certificate ~library g ~time_limit ~power_limit =
  match
    Preflight.analyze ~exact_max_vertices:0 ~library ~time_limit ~power_limit
      g
  with
  | r ->
    Option.map
      (fun c ->
        Printf.sprintf "%s: %s"
          (Preflight.certificate_code c)
          (Preflight.certificate_to_string c))
      (Preflight.first_certificate r)
  | exception _ -> None

let fingerprint ?(cost_model = Cost_model.default) ?(policy = Engine.Min_power)
    ~library g =
  Fingerprint.combine
    [
      Fingerprint.of_string cache_salt;
      Fingerprint.graph g;
      Fingerprint.library library;
      Fingerprint.of_string
        (Printf.sprintf "cost:%s:%s"
           (Fingerprint.float_repr cost_model.Cost_model.register_area)
           (Fingerprint.float_repr cost_model.Cost_model.mux_input_area));
      Fingerprint.of_string ("policy:" ^ Engine.policy_to_string policy);
    ]

let result_of_outcome = function
  | Engine.Synthesized (design, _) ->
    Feasible
      {
        area = (Design.area design).Design.total;
        peak = Profile.peak (Design.profile design);
        design;
      }
  | Engine.Infeasible { reason } -> Infeasible reason

let summary_of_result = function
  | Feasible { area; peak; design } ->
    Store.Feasible
      {
        area;
        peak;
        instances =
          List.map
            (fun (i : Design.instance) -> (i.Design.spec, i.Design.ops))
            (Design.instances design);
      }
  | Infeasible reason -> Store.Infeasible reason
  | Pruned reason -> Store.Infeasible (pruned_prefix ^ reason)
  | Failed _ -> assert false (* evaluation failures are never cached *)

(* Solve one grid point, consulting the cache when given. A cached feasible
   entry is rebuilt into a full design via [Design.assemble]; should that
   ever fail (a semantically stale entry), the engine runs and the entry is
   overwritten. *)
let solve ?cost_model ?policy ?deadline ?(preflight = false) ~library ?cache
    ?fp g ~time_limit ~power_limit =
  Metrics.incr m_points;
  Trace.span ~cat:"explore"
    ~args:
      (if Trace.observed () then
         [
           ("T", string_of_int time_limit);
           ("P<", Printf.sprintf "%g" power_limit);
         ]
       else [])
    "explore.point"
  @@ fun () ->
  Metrics.time h_point_ns @@ fun () ->
  let engine () =
    match
      if preflight then
        static_certificate ~library g ~time_limit ~power_limit
      else None
    with
    | Some reason -> Pruned reason
    | None ->
      result_of_outcome
        (Engine.run ?cost_model ?policy ?deadline ~library ~time_limit
           ~power_limit g)
  in
  (* A result produced under an exhausted budget describes the deadline,
     not the problem: a forced partial design (or an
     infeasible-before-found) cached here would poison every later
     unbudgeted run with the same key. *)
  let cacheable () =
    match deadline with Some b -> not (Budget.exhausted b) | None -> true
  in
  match cache with
  | None -> engine ()
  | Some store -> (
    let fp =
      match fp with
      | Some fp -> fp
      | None -> fingerprint ?cost_model ?policy ~library g
    in
    let key = { Store.fingerprint = fp; time_limit; power_limit } in
    let miss () =
      let r = engine () in
      if cacheable () then Store.add store key (summary_of_result r);
      r
    in
    match Store.find store key with
    | None -> miss ()
    | Some (Store.Infeasible reason) -> (
      match prune_reason_of_cached reason with
      | Some r -> Pruned r
      | None -> Infeasible reason)
    | Some (Store.Feasible { instances; _ }) -> (
      let cost_model =
        match cost_model with Some c -> c | None -> Cost_model.default
      in
      match
        Design.assemble ~cost_model ~graph:g ~time_limit ~power_limit
          ~instances
      with
      | Ok design ->
        Feasible
          {
            area = (Design.area design).Design.total;
            peak = Profile.peak (Design.profile design);
            design;
          }
      | Error _ -> miss ()))

let sweep ?cost_model ?policy ?(jobs = 1) ?cache ?deadline
    ?(preflight = false) ~library g ~times ~powers =
  let fp =
    Option.map (fun _ -> fingerprint ?cost_model ?policy ~library g) cache
  in
  let grid =
    List.concat_map (fun t -> List.map (fun p -> (t, p)) powers) times
    |> List.mapi (fun i tp -> (i, tp))
  in
  (* Static pruning runs in the calling domain, before any pool dispatch: a
     certificate costs microseconds, so a provably-doomed point never
     occupies a worker. Pruned points are cached like engine results. *)
  let static_prune (time_limit, power_limit) =
    match deadline with
    | Some b when Budget.exhausted b -> None
    | Some _ | None -> (
      match static_certificate ~library g ~time_limit ~power_limit with
      | None -> None
      | Some reason ->
        (match (cache, fp) with
        | Some store, Some fp ->
          Store.add store
            { Store.fingerprint = fp; time_limit; power_limit }
            (Store.Infeasible (pruned_prefix ^ reason))
        | _ -> ());
        Some { time_limit; power_limit; result = Pruned reason })
  in
  (* Each point is evaluated in isolation: a crash (or an armed
     "explore.point" fault, keyed by grid index so seeded campaigns kill a
     deterministic subset) becomes a per-point [Failed] result while every
     other point still runs. Points reached after the deadline are not
     evaluated at all. *)
  let failed_point (time_limit, power_limit) msg =
    Metrics.incr m_failed_points;
    { time_limit; power_limit; result = Failed msg }
  in
  let eval (i, (time_limit, power_limit)) =
    match deadline with
    | Some b when Budget.exhausted b ->
      failed_point (time_limit, power_limit)
        "deadline exceeded before evaluation"
    | Some _ | None ->
      Fault.inject ~key:i "explore.point";
      {
        time_limit;
        power_limit;
        result =
          solve ?cost_model ?policy ?deadline ~library ?cache ?fp g
            ~time_limit ~power_limit;
      }
  in
  Trace.span ~cat:"explore"
    ~args:
      (if Trace.observed () then
         [
           ("grid", string_of_int (List.length grid));
           ("jobs", string_of_int jobs);
         ]
       else [])
    "explore.sweep"
  @@ fun () ->
  let prepared =
    List.map
      (fun (i, tp) ->
        (i, tp, if preflight then static_prune tp else None))
      grid
  in
  let live =
    List.filter_map
      (fun (i, tp, pruned) ->
        match pruned with None -> Some (i, tp) | Some _ -> None)
      prepared
  in
  let evaluated =
    if jobs <= 1 then
      List.map
        (fun ((_, tp) as item) ->
          match eval item with
          | p -> p
          | exception exn -> failed_point tp (Printexc.to_string exn))
        live
    else
      Pool.with_pool ~jobs (fun pool ->
          List.map2
            (fun (_, tp) outcome ->
              match outcome with
              | Ok p -> p
              | Error (f : Pool.failure) ->
                failed_point tp (Printexc.to_string f.exn))
            live
            (Pool.try_map ~retries:1 pool eval live))
  in
  (* stitch pruned and evaluated points back into grid order *)
  let rec merge prepared evaluated =
    match prepared with
    | [] -> []
    | (_, _, Some p) :: rest -> p :: merge rest evaluated
    | (_, _, None) :: rest -> (
      match evaluated with
      | e :: es -> e :: merge rest es
      | [] -> assert false)
  in
  merge prepared evaluated

let min_feasible_power points ~time_limit =
  List.fold_left
    (fun acc p ->
      match (p.result, acc) with
      | Feasible _, None when p.time_limit = time_limit -> Some p.power_limit
      | Feasible _, Some best
        when p.time_limit = time_limit && p.power_limit < best ->
        Some p.power_limit
      | (Feasible _ | Infeasible _ | Pruned _ | Failed _), _ -> acc)
    None points

let dominates a b =
  match (a.result, b.result) with
  | Feasible fa, Feasible fb ->
    a.time_limit <= b.time_limit
    && a.power_limit <= b.power_limit
    && fa.area <= fb.area
    && (a.time_limit < b.time_limit
       || a.power_limit < b.power_limit
       || fa.area < fb.area)
  | (Feasible _ | Infeasible _ | Pruned _ | Failed _), _ -> false

let pareto points =
  let feasible =
    List.filter
      (fun p ->
        match p.result with
        | Feasible _ -> true
        | Infeasible _ | Pruned _ | Failed _ -> false)
      points
  in
  List.filter
    (fun p -> not (List.exists (fun q -> dominates q p) feasible))
    feasible
  |> List.sort (fun a b ->
         if a.time_limit <> b.time_limit then
           Int.compare a.time_limit b.time_limit
         else Float.compare a.power_limit b.power_limit)

let tighten ?cost_model ?policy ?(steps = 6) ?cache ?deadline ~library g
    ~time_limit ~power_limit =
  Trace.span ~cat:"explore" "explore.tighten" @@ fun () ->
  let fp =
    Option.map (fun _ -> fingerprint ?cost_model ?policy ~library g) cache
  in
  let attempt budget =
    match
      solve ?cost_model ?policy ?deadline ~library ?cache ?fp g ~time_limit
        ~power_limit:budget
    with
    | Feasible { design; _ } -> Ok design
    | Infeasible reason | Pruned reason | Failed reason -> Error reason
  in
  match attempt power_limit with
  | Error _ as e -> e
  | Ok first ->
    let area d = (Design.area d).Design.total in
    let next_budget budget d =
      let peak = Profile.peak (Design.profile d) in
      let shrunk =
        if Float.is_finite budget then Float.min (budget *. 0.75) (peak *. 0.99)
        else peak *. 0.99
      in
      if shrunk > 0. then Some shrunk else None
    in
    let rec refine best budget d remaining =
      if remaining = 0 then best
      else
        match next_budget budget d with
        | None -> best
        | Some budget -> (
          match attempt budget with
          | Error _ -> best
          | Ok d' ->
            let best = if area d' < area best then d' else best in
            refine best budget d' (remaining - 1))
    in
    Ok (refine first power_limit first steps)

(* Sorted ascending and deduplicated, so tables render identically whatever
   order (or multiplicity) the sweep's times/powers were given in. *)
let uniques compare key points =
  List.map key points |> List.sort_uniq compare

let render_table points =
  let buf = Buffer.create 512 in
  let times = uniques Int.compare (fun p -> p.time_limit) points in
  let powers = uniques Float.compare (fun p -> p.power_limit) points in
  Buffer.add_string buf (Printf.sprintf "%-8s" "T \\ P<");
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%8.1f" p)) powers;
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf (Printf.sprintf "%-8d" t);
      List.iter
        (fun pw ->
          let cell =
            match
              List.find_opt
                (fun p -> p.time_limit = t && p.power_limit = pw)
                points
            with
            | Some { result = Feasible { area; _ }; _ } ->
              Printf.sprintf "%8.0f" area
            | Some { result = Infeasible _; _ } -> Printf.sprintf "%8s" "-"
            (* U+2205 is three bytes, so %8s would misalign: pad by hand to
               eight visual columns *)
            | Some { result = Pruned _; _ } -> "       \xe2\x88\x85"
            | Some { result = Failed _; _ } -> Printf.sprintf "%8s" "!"
            | None -> Printf.sprintf "%8s" "?"
          in
          Buffer.add_string buf cell)
        powers;
      Buffer.add_char buf '\n')
    times;
  Buffer.add_string buf
    "legend: area = feasible, - = infeasible, \xe2\x88\x85 = pruned \
     (preflight), ! = failed, ? = missing\n";
  Buffer.contents buf
