(** Opt-in fault injection — thin compatibility shim over
    {!Pchls_resil.Fault}, which owns the [PCHLS_CHAOS] spec grammar
    ([name[:prob[:seed]]], comma-separated), the fault-point catalog and
    the deterministic seeded draws.

    The historical fault name ["no-power-check"] is an alias for
    ["engine.power-check"]: {!Engine.run} silently drops the per-cycle
    power constraint — pasap/palap, the gain tests and the final
    [Design.assemble] all see an unconstrained budget, so every internal
    validation stays green and only an external oracle comparing against
    the {e requested} limit can notice. See docs/ROBUSTNESS.md for the
    full catalog. *)

(** [armed fault] is {!Pchls_resil.Fault.armed} (alias-aware). *)
val armed : string -> bool

(** [set faults] is {!Pchls_resil.Fault.set}. Intended for tests;
    thread-safe. *)
val set : string option -> unit
