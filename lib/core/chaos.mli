(** Opt-in fault injection, for proving that the differential fuzzer
    ([pchls fuzz]) actually catches engine bugs.

    A fault is a short name armed through the [PCHLS_CHAOS] environment
    variable (comma-separated list) or, in-process, through {!set}. Faults
    are consulted by the code under test via {!armed} and deliberately break
    an invariant end to end; nothing is armed by default, and production
    paths pay one environment lookup per {!armed} call.

    Known faults (see docs/FUZZING.md):
    - ["no-power-check"]: {!Engine.run} silently drops the per-cycle power
      constraint — pasap/palap, the gain tests and the final
      [Design.assemble] all see an unconstrained budget, so every internal
      validation stays green and only an external oracle comparing against
      the {e requested} limit can notice. *)

(** [armed fault] — is [fault] listed in the in-process override ({!set}),
    or, when no override is installed, in [PCHLS_CHAOS]? *)
val armed : string -> bool

(** [set faults] installs ([Some "a,b"]) or removes ([None]) an in-process
    override of [PCHLS_CHAOS]. Intended for tests; thread-safe. *)
val set : string option -> unit
