(** A fixed-size pool of OCaml 5 domains with a mutex/condition work queue.

    Engine synthesis is pure, so design-space grid points parallelize
    embarrassingly: {!map} distributes independent evaluations over the
    pool's worker domains while preserving the input order of the results,
    making a parallel sweep bit-identical to a sequential one.

    A pool may be reused for any number of {!map}/{!map_reduce} calls and
    must eventually be released with {!shutdown} (or use {!with_pool}).
    Submitting work from inside a pool task is not supported — a task that
    calls {!map} on its own pool may deadlock. *)

type t

(** [create ~jobs ()] starts a pool of [jobs] worker domains (default:
    [Domain.recommended_domain_count ()]). With [jobs = 1] no domain is
    spawned and all work runs inline on the calling domain.

    @raise Invalid_argument when [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

(** [jobs pool] is the worker count the pool was created with. *)
val jobs : t -> int

(** [map pool f xs] applies [f] to every element of [xs] on the pool and
    returns the results in the order of [xs], regardless of completion
    order. If one or more applications raise, the exception raised by the
    {e earliest} input (smallest index) is re-raised at the join point with
    its backtrace, after all tasks have finished — so the error surfaced is
    deterministic.

    @raise Invalid_argument when the pool has been shut down. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** The terminal record of one input that kept crashing: the exception of
    the last attempt, its backtrace, and how many attempts were made. *)
type failure = {
  attempts : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

(** [try_map ?retries pool f xs] is {!map} with per-item crash isolation:
    an application that raises is retried up to [retries] times (default
    1), and if every attempt fails the item yields [Error failure] while
    every other item still runs to completion — including on the inline
    ([jobs = 1]) path, where {!map} would stop at the first exception.
    Results preserve input order.

    Each (item, attempt) consults the ["pool.worker"] fault point
    ({!Pchls_resil.Fault}) keyed by input index and salted by attempt
    number, so seeded chaos campaigns kill deterministic subsets of tasks.
    Retries and terminal failures are counted in the [pool.task_retries] /
    [pool.task_failures] metrics.

    @raise Invalid_argument when [retries < 0] or the pool has been shut
    down. *)
val try_map :
  ?retries:int -> t -> ('a -> 'b) -> 'a list -> ('b, failure) result list

(** [run pool f] executes [f ()] on a pool worker domain, blocks the
    calling thread until it finishes, and returns its result — re-raising
    any exception with its backtrace. Unlike a one-element {!map} (which
    runs inline as an optimisation), the task really is dispatched, so
    callers that overlap many independent single computations — the
    [pchls serve] request handlers — get true multi-domain parallelism
    while their own (sys-)threads only block. With [jobs = 1] it runs
    inline on the calling domain. Calling {!run} from inside a pool task
    may deadlock, like any submission from a task.

    @raise Invalid_argument when the pool has been shut down. *)
val run : t -> (unit -> 'a) -> 'a

(** [map_reduce pool ~map ~reduce ~init xs] maps in parallel like {!map},
    then folds the results sequentially in input order:
    [reduce (... (reduce init y0) ...) yn]. The fold order is deterministic,
    so non-commutative reductions are safe. *)
val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc

(** [shutdown pool] drains the queue, stops and joins every worker domain.
    Idempotent: further calls return immediately. Subsequent {!map} calls
    raise [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down when
    [f] returns or raises. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
