module Metrics = Pchls_obs.Metrics
module Clock = Pchls_obs.Clock
module Flight = Pchls_obs.Flight
module Fault = Pchls_resil.Fault

let m_tasks = Metrics.counter "pool.tasks"
let m_task_retries = Metrics.counter "pool.task_retries"
let m_task_failures = Metrics.counter "pool.task_failures"

let h_task_wait_ns =
  Metrics.histogram ~buckets:Metrics.ns_buckets "pool.task_wait_ns"

let h_task_run_ns =
  Metrics.histogram ~buckets:Metrics.ns_buckets "pool.task_run_ns"

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when a task is queued or on shutdown *)
  tasks : (unit -> unit) Queue.t;  (* tasks never raise; see [map] *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

(* Workers drain the queue even while stopping, so pending tasks are never
   dropped; they exit only once the queue is empty and [stopping] is set. *)
let worker pool () =
  let rec next () =
    if not (Queue.is_empty pool.tasks) then Some (Queue.pop pool.tasks)
    else if pool.stopping then None
    else begin
      Condition.wait pool.work pool.mutex;
      next ()
    end
  in
  let rec loop () =
    Mutex.lock pool.mutex;
    let task = next () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some task ->
      task ();
      loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Domain.recommended_domain_count ()
  in
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be >= 1, got %d" jobs);
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      tasks = Queue.create ();
      stopping = false;
      domains = [];
    }
  in
  if jobs > 1 then
    pool.domains <- List.init jobs (fun _ -> Domain.spawn (worker pool));
  pool

let jobs pool = pool.jobs

let submit pool task =
  Mutex.lock pool.mutex;
  if pool.stopping then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool: pool has been shut down"
  end;
  Queue.push task pool.tasks;
  Condition.signal pool.work;
  Mutex.unlock pool.mutex

let check_alive pool =
  Mutex.lock pool.mutex;
  let stopping = pool.stopping in
  Mutex.unlock pool.mutex;
  if stopping then invalid_arg "Pool: pool has been shut down"

let map pool f xs =
  check_alive pool;
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else if pool.jobs = 1 || n = 1 then List.map f xs
  else begin
    let results = Array.make n None in
    (* First failure by *input* index, so the surfaced error is independent
       of completion order. *)
    let failure = ref None in
    let remaining = ref n in
    let join_mutex = Mutex.create () in
    let joined = Condition.create () in
    let run i x queued_ns () =
      (* Queue wait (submit → start) vs run time, per task: the gap between
         the two is the pool's scheduling overhead, visible in the
         pool.task_*_ns histograms. *)
      let started_ns = Clock.now_ns () in
      Metrics.incr m_tasks;
      Metrics.observe h_task_wait_ns
        (Int64.to_float (Int64.sub started_ns queued_ns));
      let outcome =
        match f x with
        | y -> Ok y
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Metrics.observe h_task_run_ns (Clock.elapsed_ns ~since:started_ns);
      Mutex.lock join_mutex;
      (match outcome with
      | Ok y -> results.(i) <- Some y
      | Error (e, bt) -> (
        match !failure with
        | Some (j, _, _) when j < i -> ()
        | Some _ | None -> failure := Some (i, e, bt)));
      decr remaining;
      if !remaining = 0 then Condition.signal joined;
      Mutex.unlock join_mutex
    in
    Array.iteri (fun i x -> submit pool (run i x (Clock.now_ns ()))) arr;
    Mutex.lock join_mutex;
    while !remaining > 0 do
      Condition.wait joined join_mutex
    done;
    Mutex.unlock join_mutex;
    match !failure with
    | Some (_, e, bt) ->
      (* Crash-path hook: the worker's exception escapes at the join —
         dump the flight ring before the caller loses the context. *)
      Flight.note_crash ~origin:"pool.map" e;
      Printexc.raise_with_backtrace e bt
    | None ->
      Array.to_list
        (Array.map
           (function Some y -> y | None -> assert false (* all joined *))
           results)
  end

let run pool f =
  check_alive pool;
  if pool.jobs = 1 then f ()
  else begin
    let join_mutex = Mutex.create () in
    let joined = Condition.create () in
    let result = ref None in
    let queued_ns = Clock.now_ns () in
    submit pool (fun () ->
        let started_ns = Clock.now_ns () in
        Metrics.incr m_tasks;
        Metrics.observe h_task_wait_ns
          (Int64.to_float (Int64.sub started_ns queued_ns));
        let outcome =
          match f () with
          | y -> Ok y
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Metrics.observe h_task_run_ns (Clock.elapsed_ns ~since:started_ns);
        Mutex.lock join_mutex;
        result := Some outcome;
        Condition.signal joined;
        Mutex.unlock join_mutex);
    Mutex.lock join_mutex;
    while Option.is_none !result do
      Condition.wait joined join_mutex
    done;
    Mutex.unlock join_mutex;
    match !result with
    | Some (Ok y) -> y
    | Some (Error (e, bt)) ->
      Flight.note_crash ~origin:"pool.run" e;
      Printexc.raise_with_backtrace e bt
    | None -> assert false (* joined *)
  end

let map_reduce pool ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map pool f xs)

type failure = {
  attempts : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

(* One isolated item: crashes stay confined to their slot and are retried
   up to [retries] times before becoming a per-item [Error]. The
   "pool.worker" fault point fires per (item, attempt), so a seeded
   sub-unity probability can kill the first attempt and let the retry
   succeed. *)
let attempt_item ~retries f i x =
  let rec go attempt =
    match
      Fault.inject ~key:i ~salt:attempt "pool.worker";
      f x
    with
    | y ->
      if attempt > 0 then Metrics.incr m_task_retries;
      Ok y
    | exception exn ->
      let backtrace = Printexc.get_raw_backtrace () in
      if attempt < retries then begin
        Metrics.incr m_task_retries;
        go (attempt + 1)
      end
      else begin
        Metrics.incr m_task_failures;
        Flight.note_crash ~origin:"pool.task" exn;
        Error { attempts = attempt + 1; exn; backtrace }
      end
  in
  go 0

let try_map ?(retries = 1) pool f xs =
  if retries < 0 then
    invalid_arg (Printf.sprintf "Pool.try_map: retries < 0 (%d)" retries);
  check_alive pool;
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else if pool.jobs = 1 || n = 1 then
    (* Inline path: unlike [map], a failure does not stop the remaining
       items — isolation is the whole point. *)
    List.mapi (attempt_item ~retries f) xs
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let join_mutex = Mutex.create () in
    let joined = Condition.create () in
    let run i x queued_ns () =
      let started_ns = Clock.now_ns () in
      Metrics.incr m_tasks;
      Metrics.observe h_task_wait_ns
        (Int64.to_float (Int64.sub started_ns queued_ns));
      let outcome = attempt_item ~retries f i x in
      Metrics.observe h_task_run_ns (Clock.elapsed_ns ~since:started_ns);
      Mutex.lock join_mutex;
      results.(i) <- Some outcome;
      decr remaining;
      if !remaining = 0 then Condition.signal joined;
      Mutex.unlock join_mutex
    in
    Array.iteri (fun i x -> submit pool (run i x (Clock.now_ns ()))) arr;
    Mutex.lock join_mutex;
    while !remaining > 0 do
      Condition.wait joined join_mutex
    done;
    Mutex.unlock join_mutex;
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* all joined *))
         results)
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let domains = pool.domains in
  pool.stopping <- true;
  pool.domains <- [];
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join domains

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
