type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, got %C" c c')
    | None -> fail (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub text !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some c -> c
    | None -> fail (Printf.sprintf "bad \\u escape %S" s)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
          advance ();
          let c = hex4 () in
          (* Keep it simple: encode the scalar as UTF-8; surrogate pairs
             outside the BMP are not reassembled (the tracer never emits
             them). *)
          if c < 0x80 then Buffer.add_char buf (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end;
          pos := !pos - 1 (* the shared advance below *)
        | Some c -> fail (Printf.sprintf "bad escape \\%C" c)
        | None -> fail "unterminated escape");
        advance ();
        go ())
      | Some c when Char.code c < 0x20 ->
        fail "unescaped control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          incr d;
          advance ();
          go ()
        | Some _ | None -> ()
      in
      go ();
      if !d = 0 then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance () (* no leading zeros *)
    | Some '1' .. '9' -> digits ()
    | Some _ | None -> fail "expected digit");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with
      | Some ('+' | '-') -> advance ()
      | Some _ | None -> ());
      digits ()
    | Some _ | None -> ());
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> Number (parse_number ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | Some c -> fail (Printf.sprintf "expected ',' or ']', got %C" c)
          | None -> fail "unterminated array"
        in
        List (elems [])
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | Some c -> fail (Printf.sprintf "expected ',' or '}', got %C" c)
          | None -> fail "unterminated object"
        in
        Obj (fields [])
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | List _ -> None

(* Compact writer, the inverse of [parse] for everything the parser can
   produce. Floats that carry an integral value print as integers (the
   common case: counters, cycle counts, status codes); anything non-finite
   has no JSON spelling and becomes [null]. *)
let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

and escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string json =
  let buf = Buffer.create 256 in
  write buf json;
  Buffer.contents buf
