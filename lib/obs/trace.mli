(** Low-overhead span/event tracing for the synthesis pipeline.

    A {!sink} collects events; at most one sink is installed process-wide
    at a time. Independently, a {!Flight} recorder may be armed: {!span}
    and {!instant} record into both observers. With neither present the
    tracer is off: {!span} runs its thunk directly and records nothing —
    the zero-observer path allocates no trace events (asserted by the
    test suite via {!total_recorded} and {!Flight.total_recorded}). Hot
    call sites that would build argument lists should guard them with
    {!observed}.

    Timestamps come from {!Clock.now_ns} (monotonic, strictly increasing
    across domains); events carry the recording domain's id, so traces
    from a parallel {!Pchls_par.Pool} sweep interleave correctly. Sinks
    are mutex-protected and may be written from any domain.

    Export formats: Chrome [trace_event] JSON ({!to_chrome} — open it in
    Perfetto or [chrome://tracing]) and a human-readable nested tree
    ({!render_tree}). See docs/OBSERVABILITY.md. *)

(** The event types live in {!Event} (shared with {!Flight}) and are
    re-exported here, so [Trace.Complete] and [ev.Trace.name] patterns
    keep working. *)

type phase = Event.phase =
  | Complete of { dur_ns : int64 }  (** a span: [ts_ns .. ts_ns + dur_ns] *)
  | Instant  (** a point event *)

type event = Event.t = {
  name : string;
  cat : string;  (** coarse subsystem: ["engine"], ["sched"], ["cache"]… *)
  phase : phase;
  ts_ns : int64;  (** relative to the sink's creation *)
  tid : int;  (** recording domain id *)
  args : (string * string) list;
}

type sink

val make : unit -> sink

(** [install sink] makes [sink] the process-wide collector; [uninstall]
    turns tracing back off. *)
val install : sink -> unit

val uninstall : unit -> unit

(** [with_sink sink f] installs, runs [f], uninstalls (also on raise). *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** [enabled ()] — is a sink installed? (Does not cover the flight
    recorder; prefer {!observed} for guarding instrumentation.) *)
val enabled : unit -> bool

(** [observed ()] — is any observer (sink or armed {!Flight} recorder)
    present? Guard eager argument-list construction with this in hot
    loops. *)
val observed : unit -> bool

(** [span ?cat ?args name f] times [f] and records a [Complete] event on
    the installed sink and/or the armed flight recorder (neither → just
    runs [f]). The event is recorded even when [f] raises, so aborted
    phases still show up in the trace. *)
val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [instant ?cat ?args name] records a point event (no observer →
    no-op). *)
val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

(** [events sink] — chronological (start time, then longer spans first, so
    a parent always precedes its children). *)
val events : sink -> event list

(** [count sink] is the number of recorded events. *)
val count : sink -> int

(** [total_recorded ()] — process-lifetime count of events recorded on any
    sink. A synthesis run with no sink installed must leave it unchanged. *)
val total_recorded : unit -> int

(** [to_chrome sink] renders the Chrome [trace_event] JSON document:
    [{"traceEvents": [...]}] with [ts]/[dur] in microseconds, complete
    events as [ph:"X"] and instants as [ph:"i"]. *)
val to_chrome : sink -> string

(** [validate_chrome text] strictly parses [text] ({!Json.parse}) and
    checks the [trace_event] schema [to_chrome] promises: a top-level
    object with a [traceEvents] array whose every element has a non-empty
    string [name], string [cat], [ph] of ["X"] or ["i"], non-negative
    numbers [ts] and [pid]/[tid], a non-negative [dur] when [ph] is
    ["X"], a scope [s] when [ph] is ["i"], and string-valued [args].
    Returns the event count. *)
val validate_chrome : string -> (int, string) result

(** [render_tree sink] — an indented per-domain span tree with durations
    and arguments, for terminal consumption ([pchls profile]). *)
val render_tree : sink -> string
