(** A process-wide registry of counters, gauges and fixed-bucket
    histograms for the synthesis engine.

    Metrics are get-or-create by name ([counter "engine.backtracks"]
    returns the same counter everywhere) and update via [Atomic], so they
    are safe to bump from the worker domains of a {!Pchls_par.Pool} —
    concurrent increments never lose updates. Updates allocate nothing;
    registration (first use of a name) takes a registry lock.

    Naming convention: [<subsystem>.<what>[_<unit>]], e.g.
    [engine.backtracks], [pasap.offset_delays], [cache.hit.memory],
    [pool.task_wait_ns]. Durations are nanoseconds and end in [_ns]. See
    docs/OBSERVABILITY.md for the full catalogue. *)

type counter
type gauge
type histogram

(** [counter name] registers (or finds) the counter. Raises
    [Invalid_argument] if [name] is already a different metric kind. *)
val counter : string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** [histogram ~buckets name] — [buckets] are ascending upper bounds; an
    observation [v] lands in the first bucket with [v <= bound], or in the
    implicit overflow bucket past the last bound. Re-registering with
    different buckets raises [Invalid_argument]. *)
val histogram : buckets:float list -> string -> histogram

val observe : histogram -> float -> unit

(** [time h f] runs [f] and observes its wall-clock duration in
    nanoseconds. *)
val time : histogram -> (unit -> 'a) -> 'a

(** Default duration buckets, 1 µs to 10 s in decades (values in ns). *)
val ns_buckets : float list

type hist_snapshot = {
  bounds : float list;  (** ascending upper bounds *)
  counts : int list;  (** same length; per-bucket (not cumulative) *)
  overflow : int;  (** observations above the last bound *)
  count : int;  (** total observations *)
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

(** [snapshot ()] — every registered metric, sorted by name. *)
val snapshot : unit -> (string * value) list

(** [reset ()] zeroes all values; registrations survive. *)
val reset : unit -> unit

(** [dump ()] — an aligned text table of {!snapshot}. Zero-valued metrics
    are included, so the catalogue is always visible. *)
val dump : unit -> string

(** [to_json ()] — the snapshot as one JSON object keyed by metric name;
    counters are integers, gauges numbers, histograms
    [{"count","sum","overflow","buckets":[{"le","n"}…]}]. *)
val to_json : unit -> string

(** [to_prometheus ()] — the snapshot in Prometheus text exposition
    format (version 0.0.4): dotted registry names sanitized to
    [pchls_<name>] with dots as underscores, counters suffixed [_total],
    histograms as cumulative [_bucket{le="…"}] series ending at
    [le="+Inf"] plus [_sum] and [_count], each family preceded by its
    [# TYPE] line. Served by [pchls serve] at [GET /metrics] under
    [Accept: text/plain]. *)
val to_prometheus : unit -> string

(** [validate_prometheus text] — a promtool-style grammar check over
    exposition text (no external dependency): metric/label name syntax,
    quoted-and-escaped label values, float sample values, [# TYPE] lines
    that are unique and precede their samples, and histogram coherence
    (cumulative non-decreasing buckets ending at [le="+Inf"] whose value
    equals [_count]). Returns the number of sample lines. CI scrapes
    [GET /metrics] and gates on this via [pchls metrics validate]. *)
val validate_prometheus : string -> (int, string) result
