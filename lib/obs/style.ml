let forced : bool option Atomic.t = Atomic.make None

let auto =
  lazy
    (Sys.getenv_opt "PCHLS_NO_COLOR" = None
    && Sys.getenv_opt "NO_COLOR" = None
    && Sys.getenv_opt "TERM" <> Some "dumb"
    && (try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false))

let enabled () =
  match Atomic.get forced with Some b -> b | None -> Lazy.force auto

let set_enabled b = Atomic.set forced b

let wrap code s = if enabled () then "\027[" ^ code ^ "m" ^ s ^ "\027[0m" else s
let bold = wrap "1"
let dim = wrap "2"
let red = wrap "31"
let green = wrap "32"
let yellow = wrap "33"
let cyan = wrap "36"
