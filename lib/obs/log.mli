(** Structured JSON-lines logging, one self-describing object per line.

    Built for machine consumers (access logs, slow-request logs shipped
    to a collector): every line is a strict JSON object with [ts]
    (UTC, RFC 3339), [level], [msg] and caller-supplied fields, so
    [jq]-style pipelines never need a parser beyond {!Json}. Output is
    always byte-clean — no ANSI escapes regardless of the {!Style}
    switch, honoring the repo-wide rule that piped/machine output never
    carries color.

    Loggers are mutex-protected (safe from handler sys-threads and pool
    domains) and flush per line, so a crash loses at most the line being
    written. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

(** [level_of_string s] — case-insensitive; [None] on unknown names. *)
val level_of_string : string -> level option

type t

(** [create ?level oc] logs to [oc] (not closed by {!close}; default
    level [Info]). *)
val create : ?level:level -> out_channel -> t

(** [open_file ?level path] appends to [path]; ["-"] means stdout.
    {!close} closes the channel (unless it is stdout). *)
val open_file : ?level:level -> string -> t

val set_level : t -> level -> unit
val min_level : t -> level

(** [enabled t lvl] — would a message at [lvl] be written? Guard eager
    field construction with this. *)
val enabled : t -> level -> bool

(** [log t lvl ?fields msg] writes one JSON line
    [{"ts":…,"level":…,"msg":…, <fields>}] and flushes. Messages below
    the logger's level are dropped. Field names [ts]/[level]/[msg] are
    reserved; caller fields follow them. *)
val log : t -> level -> ?fields:(string * Json.t) list -> string -> unit

(** [close t] flushes and closes an {!open_file} logger's channel. *)
val close : t -> unit
