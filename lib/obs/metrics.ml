type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* ascending upper bounds *)
  buckets : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let register name make cast kind =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another kind"
           name))
  | None ->
    let v = make () in
    Hashtbl.replace registry name (kind v);
    v

let counter name =
  register name
    (fun () -> Atomic.make 0)
    (function C c -> Some c | G _ | H _ -> None)
    (fun c -> C c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let gauge name =
  register name
    (fun () -> Atomic.make 0.)
    (function G g -> Some g | C _ | H _ -> None)
    (fun g -> G g)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let histogram ~buckets name =
  let bounds = Array.of_list buckets in
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets not strictly ascending")
    bounds;
  let h =
    register name
      (fun () ->
        {
          bounds;
          buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.;
        })
      (function H h -> Some h | C _ | G _ -> None)
      (fun h -> H h)
  in
  if h.bounds <> bounds then
    invalid_arg
      (Printf.sprintf "Metrics: histogram %S re-registered with different \
                       buckets" name);
  h

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  ignore (Atomic.fetch_and_add h.buckets.(slot 0) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  atomic_add_float h.h_sum v

let time h f =
  let t0 = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> observe h (Clock.elapsed_ns ~since:t0)) f

let ns_buckets = [ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 ]

type hist_snapshot = {
  bounds : float list;
  counts : int list;
  overflow : int;
  count : int;
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

let snapshot_hist h =
  let per_bucket = Array.map Atomic.get h.buckets in
  {
    bounds = Array.to_list h.bounds;
    counts = Array.to_list (Array.sub per_bucket 0 (Array.length h.bounds));
    overflow = per_bucket.(Array.length h.bounds);
    count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
  }

let snapshot () =
  let entries =
    with_registry @@ fun () ->
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  in
  entries
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | C c -> Counter (Atomic.get c)
           | G g -> Gauge (Atomic.get g)
           | H h -> Histogram (snapshot_hist h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_registry @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.
      | H h ->
        Array.iter (fun b -> Atomic.set b 0) h.buckets;
        Atomic.set h.h_count 0;
        Atomic.set h.h_sum 0.)
    registry

(* --- rendering ---------------------------------------------------------- *)

let pp_bound b =
  if Float.is_integer b && Float.abs b < 1e15 then
    Printf.sprintf "%.0f" b
  else Printf.sprintf "%g" b

let hist_line s =
  let mean = if s.count = 0 then 0. else s.sum /. float_of_int s.count in
  let cells =
    List.map2
      (fun b n -> Printf.sprintf "<=%s:%d" (pp_bound b) n)
      s.bounds s.counts
    @ [ Printf.sprintf ">:%d" s.overflow ]
  in
  Printf.sprintf "count=%d mean=%.1f [%s]" s.count mean
    (String.concat " " cells)

let dump () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let kind, rendered =
        match v with
        | Counter n -> ("counter", string_of_int n)
        | Gauge f -> ("gauge", Printf.sprintf "%g" f)
        | Histogram s -> ("histogram", hist_line s)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-9s %-28s %s\n" kind name rendered))
    (snapshot ());
  Buffer.contents buf

let to_json () =
  let field (name, v) =
    let rendered =
      match v with
      | Counter n -> string_of_int n
      | Gauge f -> Printf.sprintf "%.6g" f
      | Histogram s ->
        Printf.sprintf
          "{\"count\":%d,\"sum\":%.6g,\"overflow\":%d,\"buckets\":[%s]}"
          s.count s.sum s.overflow
          (String.concat ","
             (List.map2
                (fun b n -> Printf.sprintf "{\"le\":%.6g,\"n\":%d}" b n)
                s.bounds s.counts))
    in
    Printf.sprintf "\"%s\":%s" (Json.escape name) rendered
  in
  "{" ^ String.concat "," (List.map field (snapshot ())) ^ "}"
