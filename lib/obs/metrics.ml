type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* ascending upper bounds *)
  buckets : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let register name make cast kind =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another kind"
           name))
  | None ->
    let v = make () in
    Hashtbl.replace registry name (kind v);
    v

let counter name =
  register name
    (fun () -> Atomic.make 0)
    (function C c -> Some c | G _ | H _ -> None)
    (fun c -> C c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let gauge name =
  register name
    (fun () -> Atomic.make 0.)
    (function G g -> Some g | C _ | H _ -> None)
    (fun g -> G g)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let histogram ~buckets name =
  let bounds = Array.of_list buckets in
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets not strictly ascending")
    bounds;
  let h =
    register name
      (fun () ->
        {
          bounds;
          buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.;
        })
      (function H h -> Some h | C _ | G _ -> None)
      (fun h -> H h)
  in
  if h.bounds <> bounds then
    invalid_arg
      (Printf.sprintf "Metrics: histogram %S re-registered with different \
                       buckets" name);
  h

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  ignore (Atomic.fetch_and_add h.buckets.(slot 0) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  atomic_add_float h.h_sum v

let time h f =
  let t0 = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> observe h (Clock.elapsed_ns ~since:t0)) f

let ns_buckets = [ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 ]

type hist_snapshot = {
  bounds : float list;
  counts : int list;
  overflow : int;
  count : int;
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

let snapshot_hist h =
  let per_bucket = Array.map Atomic.get h.buckets in
  {
    bounds = Array.to_list h.bounds;
    counts = Array.to_list (Array.sub per_bucket 0 (Array.length h.bounds));
    overflow = per_bucket.(Array.length h.bounds);
    count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
  }

let snapshot () =
  let entries =
    with_registry @@ fun () ->
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  in
  entries
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | C c -> Counter (Atomic.get c)
           | G g -> Gauge (Atomic.get g)
           | H h -> Histogram (snapshot_hist h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_registry @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.
      | H h ->
        Array.iter (fun b -> Atomic.set b 0) h.buckets;
        Atomic.set h.h_count 0;
        Atomic.set h.h_sum 0.)
    registry

(* --- rendering ---------------------------------------------------------- *)

let pp_bound b =
  if Float.is_integer b && Float.abs b < 1e15 then
    Printf.sprintf "%.0f" b
  else Printf.sprintf "%g" b

let hist_line s =
  let mean = if s.count = 0 then 0. else s.sum /. float_of_int s.count in
  let cells =
    List.map2
      (fun b n -> Printf.sprintf "<=%s:%d" (pp_bound b) n)
      s.bounds s.counts
    @ [ Printf.sprintf ">:%d" s.overflow ]
  in
  Printf.sprintf "count=%d mean=%.1f [%s]" s.count mean
    (String.concat " " cells)

let dump () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let kind, rendered =
        match v with
        | Counter n -> ("counter", string_of_int n)
        | Gauge f -> ("gauge", Printf.sprintf "%g" f)
        | Histogram s -> ("histogram", hist_line s)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-9s %-28s %s\n" kind name rendered))
    (snapshot ());
  Buffer.contents buf

(* --- Prometheus text exposition ----------------------------------------- *)

(* Registry names are dotted ([serve.request_ns]); Prometheus names admit
   only [a-zA-Z0-9_:]. Sanitize, prefix with the product name, and give
   counters the conventional [_total] suffix. *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "pchls_" ^ Bytes.to_string b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_prometheus () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let pname = prom_name name in
      match v with
      | Counter n ->
        Printf.bprintf buf "# TYPE %s_total counter\n%s_total %d\n" pname
          pname n
      | Gauge f ->
        Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" pname pname
          (prom_float f)
      | Histogram s ->
        Printf.bprintf buf "# TYPE %s histogram\n" pname;
        let cum = ref 0 in
        List.iter2
          (fun b n ->
            cum := !cum + n;
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" pname (pp_bound b)
              !cum)
          s.bounds s.counts;
        Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" pname
          (!cum + s.overflow);
        Printf.bprintf buf "%s_sum %s\n" pname (prom_float s.sum);
        Printf.bprintf buf "%s_count %d\n" pname s.count)
    (snapshot ());
  Buffer.contents buf

(* A promtool-style grammar check over exposition text, so CI can gate
   GET /metrics without pulling in Prometheus itself. Deliberately
   strict on what [to_prometheus] promises: name/label syntax, float
   values, TYPE-before-samples, and histogram coherence (cumulative
   non-decreasing buckets ending at le="+Inf" whose value matches
   [_count]). *)
let validate_prometheus text =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let is_name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let is_name_char c = is_name_start c || (c >= '0' && c <= '9') in
  let valid_name s =
    s <> ""
    && is_name_start s.[0]
    && String.for_all is_name_char s
  in
  let parse_value s =
    match String.lowercase_ascii s with
    | "+inf" | "inf" -> Some Float.infinity
    | "-inf" -> Some Float.neg_infinity
    | "nan" -> Some Float.nan
    | _ -> float_of_string_opt s
  in
  (* name{label="value",...} — returns (name, labels, rest-after-'}'). *)
  let parse_sample_head lineno line =
    let n = String.length line in
    let rec name_end i = if i < n && is_name_char line.[i] then name_end (i + 1) else i in
    let ne = name_end 0 in
    let name = String.sub line 0 ne in
    if not (valid_name name) then fail "line %d: invalid metric name" lineno
    else if ne < n && line.[ne] = '{' then begin
      (* Scan label pairs, honoring backslash escapes inside values. *)
      let labels = ref [] in
      let i = ref (ne + 1) in
      let err = ref None in
      let finished = ref false in
      while not !finished && !err = None do
        if !i >= n then begin
          err := Some "unterminated label set"
        end
        else if line.[!i] = '}' then begin
          i := !i + 1;
          finished := true
        end
        else begin
          let ls = !i in
          let rec lname_end j =
            if j < n && is_name_char line.[j] then lname_end (j + 1) else j
          in
          let le = lname_end ls in
          let lname = String.sub line ls (le - ls) in
          if lname = "" || not (is_name_start lname.[0]) then
            err := Some "invalid label name"
          else if le >= n - 1 || line.[le] <> '=' || line.[le + 1] <> '"' then
            err := Some "label value must be quoted"
          else begin
            let vbuf = Buffer.create 16 in
            let j = ref (le + 2) in
            let closed = ref false in
            while not !closed && !err = None do
              if !j >= n then err := Some "unterminated label value"
              else
                match line.[!j] with
                | '"' ->
                  closed := true;
                  j := !j + 1
                | '\\' ->
                  if !j + 1 >= n then err := Some "dangling escape"
                  else begin
                    (match line.[!j + 1] with
                    | '\\' -> Buffer.add_char vbuf '\\'
                    | '"' -> Buffer.add_char vbuf '"'
                    | 'n' -> Buffer.add_char vbuf '\n'
                    | _ -> err := Some "bad escape in label value");
                    j := !j + 2
                  end
                | c ->
                  Buffer.add_char vbuf c;
                  j := !j + 1
            done;
            if !err = None then begin
              labels := (lname, Buffer.contents vbuf) :: !labels;
              i := !j;
              if !i < n && line.[!i] = ',' then i := !i + 1
              else if !i >= n || line.[!i] <> '}' then
                err := Some "expected ',' or '}' after label"
            end
          end
        end
      done;
      match !err with
      | Some msg -> fail "line %d: %s" lineno msg
      | None -> Ok (name, List.rev !labels, String.sub line !i (n - !i))
    end
    else Ok (name, [], String.sub line ne (n - ne))
  in
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let sampled : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* (base histogram name, le, cumulative count) in file order, plus the
     _count samples, checked for coherence at the end. *)
  let hist_buckets : (string * float * float) list ref = ref [] in
  let hist_counts : (string * float) list ref = ref [] in
  let samples = ref 0 in
  let check_line lineno line =
    if line = "" then Ok ()
    else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
      match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
      | [ name; kind ] ->
        if not (valid_name name) then
          fail "line %d: invalid metric name in TYPE" lineno
        else if
          not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
        then fail "line %d: unknown TYPE %S" lineno kind
        else if Hashtbl.mem types name then
          fail "line %d: duplicate TYPE for %s" lineno name
        else if Hashtbl.mem sampled name then
          fail "line %d: TYPE for %s after its samples" lineno name
        else begin
          Hashtbl.replace types name kind;
          Ok ()
        end
      | _ -> fail "line %d: malformed TYPE line" lineno
    end
    else if line.[0] = '#' then Ok () (* HELP or free comment *)
    else
      let* name, labels, rest = parse_sample_head lineno line in
      let rest = String.trim rest in
      let* value =
        match String.split_on_char ' ' rest with
        | [ v ] | [ v; _ ] -> (
          (* optional trailing timestamp *)
          match parse_value v with
          | Some f -> Ok f
          | None -> fail "line %d: invalid sample value %S" lineno v)
        | _ -> fail "line %d: malformed sample" lineno
      in
      Hashtbl.replace sampled name ();
      samples := !samples + 1;
      let strip suffix =
        let ls = String.length suffix and ln = String.length name in
        if ln > ls && String.sub name (ln - ls) ls = suffix then
          Some (String.sub name 0 (ln - ls))
        else None
      in
      (match (strip "_bucket", List.assoc_opt "le" labels) with
      | Some base, Some le when Hashtbl.find_opt types base = Some "histogram"
        -> (
        match parse_value le with
        | Some b -> hist_buckets := (base, b, value) :: !hist_buckets
        | None -> ())
      | _ -> ());
      (match strip "_count" with
      | Some base when Hashtbl.find_opt types base = Some "histogram" ->
        hist_counts := (base, value) :: !hist_counts
      | _ -> ());
      Ok ()
  in
  let lines = String.split_on_char '\n' text in
  let rec all lineno = function
    | [] -> Ok ()
    | line :: rest ->
      let* () = check_line lineno line in
      all (lineno + 1) rest
  in
  let* () = all 1 lines in
  (* Histogram coherence, per base name in file order. *)
  let bases =
    List.sort_uniq String.compare (List.map (fun (b, _, _) -> b) !hist_buckets)
  in
  let rec check_bases = function
    | [] -> Ok !samples
    | base :: rest ->
      let buckets =
        List.rev
          (List.filter_map
             (fun (b, le, v) -> if b = base then Some (le, v) else None)
             !hist_buckets)
      in
      let rec non_decreasing = function
        | (_, a) :: ((_, b) :: _ as tl) ->
          if a > b then false else non_decreasing tl
        | _ -> true
      in
      if not (non_decreasing buckets) then
        fail "histogram %s: bucket counts are not cumulative" base
      else if
        match List.rev buckets with
        | (le, _) :: _ -> le <> Float.infinity
        | [] -> true
      then fail "histogram %s: missing le=\"+Inf\" bucket" base
      else
        let inf_count =
          match List.rev buckets with (_, v) :: _ -> v | [] -> 0.
        in
        let* () =
          match List.assoc_opt base !hist_counts with
          | Some c when c <> inf_count ->
            fail "histogram %s: _count %g disagrees with +Inf bucket %g" base
              c inf_count
          | _ -> Ok ()
        in
        check_bases rest
  in
  check_bases bases

let to_json () =
  let field (name, v) =
    let rendered =
      match v with
      | Counter n -> string_of_int n
      | Gauge f -> Printf.sprintf "%.6g" f
      | Histogram s ->
        Printf.sprintf
          "{\"count\":%d,\"sum\":%.6g,\"overflow\":%d,\"buckets\":[%s]}"
          s.count s.sum s.overflow
          (String.concat ","
             (List.map2
                (fun b n -> Printf.sprintf "{\"le\":%.6g,\"n\":%d}" b n)
                s.bounds s.counts))
    in
    Printf.sprintf "\"%s\":%s" (Json.escape name) rendered
  in
  "{" ^ String.concat "," (List.map field (snapshot ())) ^ "}"
