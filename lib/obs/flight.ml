(* Each shard is an independent mutex-protected ring: recording takes one
   short critical section on the recording domain's shard, so workers
   never contend with each other on the hot path. *)
type ring = {
  mutex : Mutex.t;
  slots : Event.t option array;
  mutable next : int;
  mutable shard_dropped : int;
}

type t = {
  epoch_ns : int64;
  cap : int;
  shards : ring array;
  n_recorded : int Atomic.t;
}

let n_shards = 8
let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  let cap = max 1 capacity in
  {
    epoch_ns = Clock.now_ns ();
    cap;
    shards =
      Array.init n_shards (fun _ ->
          {
            mutex = Mutex.create ();
            slots = Array.make cap None;
            next = 0;
            shard_dropped = 0;
          });
    n_recorded = Atomic.make 0;
  }

let installed : t option Atomic.t = Atomic.make None
let total : int Atomic.t = Atomic.make 0

let arm t = Atomic.set installed (Some t)
let disarm () = Atomic.set installed None

let with_armed t f =
  arm t;
  Fun.protect ~finally:disarm f

let armed () = Option.is_some (Atomic.get installed)
let current () = Atomic.get installed

let record ev =
  match Atomic.get installed with
  | None -> ()
  | Some t ->
    let shard = t.shards.((ev.Event.tid land max_int) mod n_shards) in
    Mutex.lock shard.mutex;
    if Option.is_some shard.slots.(shard.next) then
      shard.shard_dropped <- shard.shard_dropped + 1;
    shard.slots.(shard.next) <- Some ev;
    shard.next <- (shard.next + 1) mod t.cap;
    Mutex.unlock shard.mutex;
    Atomic.incr t.n_recorded;
    Atomic.incr total

(* Events are stored with absolute timestamps (the recorder may be armed
   long after process start, and re-armed); relativize to the recorder's
   epoch at read time. An event recorded across an arm boundary can land
   a hair before the epoch — clamp rather than emit a negative ts the
   Chrome schema rejects. *)
let events t =
  let collect shard =
    Mutex.lock shard.mutex;
    let evs = Array.to_list shard.slots in
    Mutex.unlock shard.mutex;
    List.filter_map Fun.id evs
  in
  let relativize ev =
    let ts = Int64.sub ev.Event.ts_ns t.epoch_ns in
    { ev with Event.ts_ns = (if Int64.compare ts 0L < 0 then 0L else ts) }
  in
  Array.to_list t.shards
  |> List.concat_map collect
  |> List.map relativize
  |> Event.sort

let recorded t = Atomic.get t.n_recorded

let dropped t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.mutex;
      let d = shard.shard_dropped in
      Mutex.unlock shard.mutex;
      acc + d)
    0 t.shards

let retained t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.mutex;
      let n =
        Array.fold_left
          (fun n s -> if Option.is_some s then n + 1 else n)
          0 shard.slots
      in
      Mutex.unlock shard.mutex;
      acc + n)
    0 t.shards
let capacity t = t.cap
let total_recorded () = Atomic.get total

let to_chrome t = Event.chrome_document (events t)

let dump_to_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_chrome t);
  close_out oc;
  Sys.rename tmp path

(* --- crash and signal dumps --------------------------------------------- *)

let crash_path =
  Atomic.make
    (Option.value
       (Sys.getenv_opt "PCHLS_FLIGHT_CRASH")
       ~default:"pchls-flight-crash.json")

let set_crash_path path = Atomic.set crash_path path

let note_crash ~origin exn =
  match Atomic.get installed with
  | None -> ()
  | Some t -> (
    try
      record
        {
          Event.name = "flight.crash";
          cat = "flight";
          phase = Event.Instant;
          ts_ns = Clock.now_ns ();
          tid = (Domain.self () :> int);
          args =
            [ ("origin", origin); ("exn", Printexc.to_string exn) ];
        };
      dump_to_file t (Atomic.get crash_path)
    with _ -> ())

let install_sigusr1 ?path () =
  let path =
    match path with
    | Some p -> p
    | None -> Printf.sprintf "pchls-flight-%d.json" (Unix.getpid ())
  in
  (* OCaml signal handlers run at safe points on the main execution, so
     dumping (which allocates) is fine here. *)
  (try
     Sys.set_signal Sys.sigusr1
       (Sys.Signal_handle
          (fun _ ->
            match Atomic.get installed with
            | None -> ()
            | Some t -> ( try dump_to_file t path with _ -> ())))
   with Invalid_argument _ -> ());
  path
