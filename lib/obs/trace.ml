type phase = Complete of { dur_ns : int64 } | Instant

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int64;
  tid : int;
  args : (string * string) list;
}

type sink = {
  mutex : Mutex.t;
  epoch_ns : int64;
  mutable rev_events : event list;
  mutable n : int;
}

let installed : sink option Atomic.t = Atomic.make None
let total : int Atomic.t = Atomic.make 0

let make () =
  {
    mutex = Mutex.create ();
    epoch_ns = Clock.now_ns ();
    rev_events = [];
    n = 0;
  }

let install sink = Atomic.set installed (Some sink)
let uninstall () = Atomic.set installed None

let with_sink sink f =
  install sink;
  Fun.protect ~finally:uninstall f

let enabled () = Atomic.get installed <> None
let tid () = (Domain.self () :> int)

let record sink ev =
  Mutex.lock sink.mutex;
  sink.rev_events <- ev :: sink.rev_events;
  sink.n <- sink.n + 1;
  Mutex.unlock sink.mutex;
  Atomic.incr total

let span ?(cat = "pchls") ?(args = []) name f =
  match Atomic.get installed with
  | None -> f ()
  | Some sink ->
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        record sink
          {
            name;
            cat;
            phase = Complete { dur_ns = Int64.sub t1 t0 };
            ts_ns = Int64.sub t0 sink.epoch_ns;
            tid = tid ();
            args;
          })
      f

let instant ?(cat = "pchls") ?(args = []) name =
  match Atomic.get installed with
  | None -> ()
  | Some sink ->
    record sink
      {
        name;
        cat;
        phase = Instant;
        ts_ns = Int64.sub (Clock.now_ns ()) sink.epoch_ns;
        tid = tid ();
        args;
      }

let end_ns ev =
  match ev.phase with
  | Complete { dur_ns } -> Int64.add ev.ts_ns dur_ns
  | Instant -> ev.ts_ns

(* Spans are recorded when they *finish*, so the raw list is in completion
   order; sort by start time, longer spans first on ties, so a parent
   always precedes the children it encloses. *)
let events sink =
  Mutex.lock sink.mutex;
  let evs = List.rev sink.rev_events in
  Mutex.unlock sink.mutex;
  List.stable_sort
    (fun a b ->
      let c = Int64.compare a.ts_ns b.ts_ns in
      if c <> 0 then c else Int64.compare (end_ns b) (end_ns a))
    evs

let count sink =
  Mutex.lock sink.mutex;
  let n = sink.n in
  Mutex.unlock sink.mutex;
  n

let total_recorded () = Atomic.get total

(* --- Chrome trace_event JSON ------------------------------------------- *)

let us ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3)

let args_json args =
  if args = [] then ""
  else
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v))
            args))

let event_json ev =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%s"
      (Json.escape ev.name) (Json.escape ev.cat) ev.tid (us ev.ts_ns)
  in
  match ev.phase with
  | Complete { dur_ns } ->
    Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%s%s}" common (us dur_ns)
      (args_json ev.args)
  | Instant ->
    Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\"%s}" common (args_json ev.args)

let to_chrome sink =
  let evs = events sink in
  let buf = Buffer.create (256 * (1 + List.length evs)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (event_json ev))
    evs;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* --- validation --------------------------------------------------------- *)

let validate_chrome text =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* json = Json.parse text in
  let* evs =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> Ok evs
    | Some _ -> fail "traceEvents is not an array"
    | None -> fail "missing traceEvents"
  in
  let non_negative_number i field ev =
    match Json.member field ev with
    | Some (Json.Number f) when f >= 0. -> Ok ()
    | Some (Json.Number _) -> fail "event %d: negative %s" i field
    | Some _ -> fail "event %d: %s is not a number" i field
    | None -> fail "event %d: missing %s" i field
  in
  let check i ev =
    let* () =
      match Json.member "name" ev with
      | Some (Json.String s) when s <> "" -> Ok ()
      | Some (Json.String _) -> fail "event %d: empty name" i
      | Some _ -> fail "event %d: name is not a string" i
      | None -> fail "event %d: missing name" i
    in
    let* () =
      match Json.member "cat" ev with
      | Some (Json.String _) -> Ok ()
      | Some _ -> fail "event %d: cat is not a string" i
      | None -> fail "event %d: missing cat" i
    in
    let* () = non_negative_number i "ts" ev in
    let* () = non_negative_number i "pid" ev in
    let* () = non_negative_number i "tid" ev in
    let* () =
      match Json.member "args" ev with
      | None -> Ok ()
      | Some (Json.Obj fields) ->
        if
          List.for_all
            (fun (_, v) -> match v with Json.String _ -> true | _ -> false)
            fields
        then Ok ()
        else fail "event %d: non-string arg value" i
      | Some _ -> fail "event %d: args is not an object" i
    in
    match Json.member "ph" ev with
    | Some (Json.String "X") -> non_negative_number i "dur" ev
    | Some (Json.String "i") -> (
      match Json.member "s" ev with
      | Some (Json.String ("t" | "p" | "g")) -> Ok ()
      | Some _ -> fail "event %d: bad instant scope" i
      | None -> fail "event %d: instant without scope" i)
    | Some (Json.String ph) -> fail "event %d: unknown phase %S" i ph
    | Some _ -> fail "event %d: ph is not a string" i
    | None -> fail "event %d: missing ph" i
  in
  let rec all i = function
    | [] -> Ok (List.length evs)
    | ev :: rest ->
      let* () = check i ev in
      all (i + 1) rest
  in
  all 0 evs

(* --- human-readable tree ------------------------------------------------ *)

let pp_dur ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Printf.sprintf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1f us" (f /. 1e3)
  else Printf.sprintf "%Ld ns" ns

let render_tree sink =
  let evs = events sink in
  let tids = List.sort_uniq Int.compare (List.map (fun e -> e.tid) evs) in
  let buf = Buffer.create 1024 in
  List.iter
    (fun tid ->
      Buffer.add_string buf (Printf.sprintf "domain %d\n" tid);
      let stack = ref [] in
      List.iter
        (fun ev ->
          if ev.tid = tid then begin
            (* Pop finished ancestors: ev starts at or after their end. *)
            stack :=
              List.filter (fun e -> Int64.compare ev.ts_ns e < 0) !stack;
            let indent = String.make (2 * (1 + List.length !stack)) ' ' in
            let args =
              if ev.args = [] then ""
              else
                Printf.sprintf "  [%s]"
                  (String.concat " "
                     (List.map (fun (k, v) -> k ^ "=" ^ v) ev.args))
            in
            (match ev.phase with
            | Complete { dur_ns } ->
              Buffer.add_string buf
                (Printf.sprintf "%s%-40s %10s%s\n" indent ev.name
                   (pp_dur dur_ns) args);
              stack := end_ns ev :: !stack
            | Instant ->
              Buffer.add_string buf
                (Printf.sprintf "%s- %s%s\n" indent ev.name args))
          end)
        evs)
    tids;
  Buffer.contents buf
