type phase = Event.phase = Complete of { dur_ns : int64 } | Instant

type event = Event.t = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int64;
  tid : int;
  args : (string * string) list;
}

type sink = {
  mutex : Mutex.t;
  epoch_ns : int64;
  mutable rev_events : event list;
  mutable n : int;
}

let installed : sink option Atomic.t = Atomic.make None
let total : int Atomic.t = Atomic.make 0

let make () =
  {
    mutex = Mutex.create ();
    epoch_ns = Clock.now_ns ();
    rev_events = [];
    n = 0;
  }

let install sink = Atomic.set installed (Some sink)
let uninstall () = Atomic.set installed None

let with_sink sink f =
  install sink;
  Fun.protect ~finally:uninstall f

let enabled () = Option.is_some (Atomic.get installed)
let observed () = Option.is_some (Atomic.get installed) || Flight.armed ()
let tid () = (Domain.self () :> int)

let record sink ev =
  Mutex.lock sink.mutex;
  sink.rev_events <- ev :: sink.rev_events;
  sink.n <- sink.n + 1;
  Mutex.unlock sink.mutex;
  Atomic.incr total

(* The observer tee: the sink keeps everything (timestamps relative to
   its epoch), the flight recorder keeps a bounded ring (absolute
   timestamps, relativized at dump time). [t0_ns] is absolute. *)
let emit ~name ~cat ~args ~t0_ns ~phase =
  let tid = tid () in
  (match Atomic.get installed with
  | None -> ()
  | Some sink ->
    record sink
      { name; cat; phase; ts_ns = Int64.sub t0_ns sink.epoch_ns; tid; args });
  if Flight.armed () then
    Flight.record { name; cat; phase; ts_ns = t0_ns; tid; args }

let span ?(cat = "pchls") ?(args = []) name f =
  if not (observed ()) then f ()
  else
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        emit ~name ~cat ~args ~t0_ns:t0
          ~phase:(Complete { dur_ns = Int64.sub t1 t0 }))
      f

let instant ?(cat = "pchls") ?(args = []) name =
  if observed () then
    emit ~name ~cat ~args ~t0_ns:(Clock.now_ns ()) ~phase:Instant

let events sink =
  Mutex.lock sink.mutex;
  let evs = List.rev sink.rev_events in
  Mutex.unlock sink.mutex;
  Event.sort evs

let count sink =
  Mutex.lock sink.mutex;
  let n = sink.n in
  Mutex.unlock sink.mutex;
  n

let total_recorded () = Atomic.get total

(* --- Chrome trace_event JSON ------------------------------------------- *)

let to_chrome sink = Event.chrome_document (events sink)

(* --- validation --------------------------------------------------------- *)

let validate_chrome text =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* json = Json.parse text in
  let* evs =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> Ok evs
    | Some _ -> fail "traceEvents is not an array"
    | None -> fail "missing traceEvents"
  in
  let non_negative_number i field ev =
    match Json.member field ev with
    | Some (Json.Number f) when f >= 0. -> Ok ()
    | Some (Json.Number _) -> fail "event %d: negative %s" i field
    | Some _ -> fail "event %d: %s is not a number" i field
    | None -> fail "event %d: missing %s" i field
  in
  let check i ev =
    let* () =
      match Json.member "name" ev with
      | Some (Json.String s) when s <> "" -> Ok ()
      | Some (Json.String _) -> fail "event %d: empty name" i
      | Some _ -> fail "event %d: name is not a string" i
      | None -> fail "event %d: missing name" i
    in
    let* () =
      match Json.member "cat" ev with
      | Some (Json.String _) -> Ok ()
      | Some _ -> fail "event %d: cat is not a string" i
      | None -> fail "event %d: missing cat" i
    in
    let* () = non_negative_number i "ts" ev in
    let* () = non_negative_number i "pid" ev in
    let* () = non_negative_number i "tid" ev in
    let* () =
      match Json.member "args" ev with
      | None -> Ok ()
      | Some (Json.Obj fields) ->
        if
          List.for_all
            (fun (_, v) -> match v with Json.String _ -> true | _ -> false)
            fields
        then Ok ()
        else fail "event %d: non-string arg value" i
      | Some _ -> fail "event %d: args is not an object" i
    in
    match Json.member "ph" ev with
    | Some (Json.String "X") -> non_negative_number i "dur" ev
    | Some (Json.String "i") -> (
      match Json.member "s" ev with
      | Some (Json.String ("t" | "p" | "g")) -> Ok ()
      | Some _ -> fail "event %d: bad instant scope" i
      | None -> fail "event %d: instant without scope" i)
    | Some (Json.String ph) -> fail "event %d: unknown phase %S" i ph
    | Some _ -> fail "event %d: ph is not a string" i
    | None -> fail "event %d: missing ph" i
  in
  let rec all i = function
    | [] -> Ok (List.length evs)
    | ev :: rest ->
      let* () = check i ev in
      all (i + 1) rest
  in
  all 0 evs

(* --- human-readable tree ------------------------------------------------ *)

let render_tree sink = Event.render_tree (events sink)
