(** Process-wide monotonic nanosecond clock.

    The wall clock can step backwards (NTP adjustments); observability
    timestamps must not, or span durations go negative and trace viewers
    render garbage. [now_ns] therefore clamps to strictly increasing
    values across all domains: concurrent callers each get a distinct,
    ordered timestamp. *)

(** [now_ns ()] — nanoseconds since an arbitrary process-local epoch,
    strictly increasing across every call in the process. *)
val now_ns : unit -> int64

(** [elapsed_ns ~since] is [now_ns () - since] as a float (for metric
    histograms, which observe floats). *)
val elapsed_ns : since:int64 -> float
