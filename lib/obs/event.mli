(** The span/instant event datatype shared by the {!Trace} sink and the
    {!Flight} recorder, together with its Chrome [trace_event] JSON
    renderings.

    Both observers record the same events; they differ only in retention
    policy (a sink keeps everything, the flight recorder keeps a bounded
    ring). Factoring the datatype and the export formats here lets either
    side produce byte-identical Chrome documents and the same
    human-readable tree, and lets saved documents round-trip back into
    event lists ({!of_chrome}) for offline rendering
    ([pchls trace tree]). *)

type phase =
  | Complete of { dur_ns : int64 }  (** a span: [ts_ns .. ts_ns + dur_ns] *)
  | Instant  (** a point event *)

type t = {
  name : string;
  cat : string;  (** coarse subsystem: ["engine"], ["sched"], ["cache"]… *)
  phase : phase;
  ts_ns : int64;  (** relative to the observer's epoch *)
  tid : int;  (** recording domain id *)
  args : (string * string) list;
}

(** [end_ns ev] — where the event stops occupying its lane: [ts_ns] plus
    the duration for spans, [ts_ns] itself for instants. *)
val end_ns : t -> int64

(** [sort evs] — chronological by start time, longer spans first on ties,
    so a parent always precedes the children it encloses. Stable. *)
val sort : t list -> t list

(** [to_json ev] — one Chrome [trace_event] object ([ph:"X"] for spans,
    [ph:"i"] for instants; [ts]/[dur] in microseconds). *)
val to_json : t -> string

(** [chrome_document evs] — the full [{"traceEvents": [...]}] document
    over [sort evs]. *)
val chrome_document : t list -> string

(** [of_chrome text] parses a Chrome [trace_event] document (strict
    {!Json} parser) back into events — the inverse of {!chrome_document}
    for the subset pchls emits ([ph] of ["X"] or ["i"], string args).
    Microsecond timestamps convert back to nanoseconds exactly at the
    3-decimal precision {!to_json} writes. *)
val of_chrome : string -> (t list, string) result

(** [pp_dur ns] — a human-scaled duration (["1.24 ms"], ["312 ns"]…). *)
val pp_dur : int64 -> string

(** [render_tree evs] — an indented per-domain span tree with durations
    and arguments, for terminal consumption ([pchls profile],
    [pchls trace tree]). Sorts internally. *)
val render_tree : t list -> string
