(** An always-on flight recorder: a fixed-capacity ring of recent
    span/instant events, dumpable after the fact.

    The {!Trace} sink retains every event, which is right for a bounded
    profiling run and wrong for a long-lived daemon: a slow or crashed
    request hours in leaves either an unbounded sink or no evidence at
    all. A flight recorder keeps only the last [capacity] events per
    domain shard — recording is allocation-bounded (one event record per
    span, stored into a preallocated ring slot) and dropping is silent
    and counted — so it can stay armed for the life of the process.

    At most one recorder is armed process-wide ({!arm}/{!disarm}); it
    observes the same {!Trace.span}/{!Trace.instant} call sites as a
    sink, independently of whether a sink is also installed. With
    neither armed, instrumented code records nothing and allocates no
    events (asserted by the test suite via {!total_recorded}).

    Dump triggers: {!to_chrome}/{!dump_to_file} on demand (the
    [GET /debug/flight] endpoint), {!install_sigusr1} (dump on
    [SIGUSR1]), and {!note_crash} (uncaught-exception paths in
    [Engine.run], [Pchls_par.Pool] and the serve handler). All dumps are
    valid Chrome [trace_event] documents ({!Trace.validate_chrome}
    accepts them). See docs/OBSERVABILITY.md. *)

type t

val default_capacity : int

(** [create ?capacity ()] — a recorder retaining up to [capacity] events
    {e per domain shard} (default {!default_capacity}). Events from a
    domain land in one of a fixed set of shards keyed by domain id, so
    one chatty worker cannot evict another worker's history; total
    retention is bounded by [capacity × shards]. *)
val create : ?capacity:int -> unit -> t

(** [arm t] makes [t] the process-wide flight recorder; [disarm] turns
    flight recording back off. *)
val arm : t -> unit

val disarm : unit -> unit

(** [with_armed t f] arms, runs [f], disarms (also on raise). *)
val with_armed : t -> (unit -> 'a) -> 'a

(** [armed ()] — is any recorder armed? *)
val armed : unit -> bool

(** [current ()] — the armed recorder, if any. *)
val current : unit -> t option

(** [record ev] stores [ev] (with an {e absolute} {!Clock.now_ns}
    timestamp) into the armed recorder's ring, evicting the oldest event
    of its shard when full. No-op when nothing is armed. Called by
    {!Trace.span}/{!Trace.instant}; call it directly only for custom
    events. *)
val record : Event.t -> unit

(** [events t] — the retained events, timestamps relative to the
    recorder's creation, in {!Event.sort} order. *)
val events : t -> Event.t list

(** [recorded t] — events ever recorded into [t] (retained + dropped). *)
val recorded : t -> int

(** [dropped t] — events evicted from full rings. *)
val dropped : t -> int

(** [retained t] — events currently held. *)
val retained : t -> int

(** [capacity t] — the per-shard retention cap [t] was created with. *)
val capacity : t -> int

(** [total_recorded ()] — process-lifetime count of events recorded into
    any flight recorder. A synthesis run with nothing armed must leave
    it unchanged. *)
val total_recorded : unit -> int

(** [to_chrome t] — the retained events as a Chrome [trace_event]
    document ({!Event.chrome_document}). *)
val to_chrome : t -> string

(** [dump_to_file t path] writes {!to_chrome} to [path] atomically
    (temp file + rename). *)
val dump_to_file : t -> string -> unit

(** [note_crash ~origin exn] — the crash-path hook: records a
    ["flight.crash"] instant carrying [origin] and the exception, then
    dumps the armed recorder to the crash path (default
    ["pchls-flight-crash.json"], overridable with {!set_crash_path} or
    the [PCHLS_FLIGHT_CRASH] environment variable). Never raises; no-op
    when nothing is armed. *)
val note_crash : origin:string -> exn -> unit

val set_crash_path : string -> unit

(** [install_sigusr1 ?path ()] installs a [SIGUSR1] handler that dumps
    the armed recorder to [path] (default
    ["pchls-flight-<pid>.json"]); returns the effective path. On
    platforms without [SIGUSR1] it does nothing beyond returning the
    path. *)
val install_sigusr1 : ?path:string -> unit -> string
