(** A strict, dependency-free JSON reader and string escaper.

    Used to validate the Chrome-trace files {!Trace.to_chrome} emits (the
    test suite and [pchls trace validate] both round-trip through it) and
    by the metrics JSON dumps. Strict means: exactly the RFC 8259 grammar,
    no trailing commas, no comments, no garbage after the top-level
    value. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in source order *)

(** [parse text] — [Error] carries a byte offset and reason. *)
val parse : string -> (t, string) result

(** [member key json] is the value of field [key] when [json] is an
    object that has one. *)
val member : string -> t -> t option

(** [escape s] backslash-escapes [s] for embedding inside a JSON string
    literal (without the surrounding quotes). *)
val escape : string -> string

(** [to_string json] renders [json] compactly. Integral numbers print
    without a decimal point, so [parse (to_string j)] round-trips values
    the parser can produce; non-finite numbers (which RFC 8259 cannot
    express) render as [null]. *)
val to_string : t -> string
