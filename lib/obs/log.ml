type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type t = {
  mutex : Mutex.t;
  oc : out_channel;
  owns_channel : bool;
  mutable lvl : level;
}

let create ?(level = Info) oc =
  { mutex = Mutex.create (); oc; owns_channel = false; lvl = level }

let open_file ?(level = Info) path =
  if path = "-" then
    { mutex = Mutex.create (); oc = stdout; owns_channel = false; lvl = level }
  else
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    { mutex = Mutex.create (); oc; owns_channel = true; lvl = level }

let set_level t lvl = t.lvl <- lvl
let min_level t = t.lvl
let enabled t lvl = severity lvl >= severity t.lvl

let timestamp () =
  let now = Unix.gettimeofday () in
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ"
    (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    (max 0 (min 999 ms))

let log t lvl ?(fields = []) msg =
  if enabled t lvl then begin
    let line =
      Json.to_string
        (Json.Obj
           ([
              ("ts", Json.String (timestamp ()));
              ("level", Json.String (level_to_string lvl));
              ("msg", Json.String msg);
            ]
           @ fields))
    in
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc)
  end

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      flush t.oc;
      if t.owns_channel then close_out t.oc)
