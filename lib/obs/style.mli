(** Shared ANSI styling with a uniform escape hatch.

    Color is on only when stdout is a TTY, neither [PCHLS_NO_COLOR] nor
    [NO_COLOR] is set, and [TERM] is not ["dumb"]; any CLI [--no-color]
    flag forces it off via {!set_enabled}. Piped output (golden tests,
    [check --json], CSV reports) therefore stays byte-clean without every
    caller re-implementing the check. *)

(** [enabled ()] — the current effective setting. *)
val enabled : unit -> bool

(** [set_enabled (Some b)] forces color on/off; [None] restores
    auto-detection. *)
val set_enabled : bool option -> unit

val bold : string -> string
val dim : string -> string
val red : string -> string
val green : string -> string
val yellow : string -> string
val cyan : string -> string
