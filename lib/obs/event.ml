type phase = Complete of { dur_ns : int64 } | Instant

type t = {
  name : string;
  cat : string;
  phase : phase;
  ts_ns : int64;
  tid : int;
  args : (string * string) list;
}

let end_ns ev =
  match ev.phase with
  | Complete { dur_ns } -> Int64.add ev.ts_ns dur_ns
  | Instant -> ev.ts_ns

(* Spans are recorded when they *finish*, so raw lists are in completion
   order; sort by start time, longer spans first on ties, so a parent
   always precedes the children it encloses. *)
let sort evs =
  List.stable_sort
    (fun a b ->
      let c = Int64.compare a.ts_ns b.ts_ns in
      if c <> 0 then c else Int64.compare (end_ns b) (end_ns a))
    evs

(* --- Chrome trace_event JSON ------------------------------------------- *)

let us ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3)

let args_json args =
  if args = [] then ""
  else
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v))
            args))

let to_json ev =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%s"
      (Json.escape ev.name) (Json.escape ev.cat) ev.tid (us ev.ts_ns)
  in
  match ev.phase with
  | Complete { dur_ns } ->
    Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%s%s}" common (us dur_ns)
      (args_json ev.args)
  | Instant ->
    Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\"%s}" common (args_json ev.args)

let chrome_document evs =
  let evs = sort evs in
  let buf = Buffer.create (256 * (1 + List.length evs)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (to_json ev))
    evs;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* The inverse, for offline rendering of saved dumps. Microsecond floats
   carry 3 decimals, so rounding back to nanoseconds is exact. *)
let of_chrome text =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* json = Json.parse text in
  let* evs =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> Ok evs
    | Some _ -> fail "traceEvents is not an array"
    | None -> fail "missing traceEvents"
  in
  let ns_of_us f = Int64.of_float (Float.round (f *. 1e3)) in
  let event i ev =
    let str field =
      match Json.member field ev with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    let num field =
      match Json.member field ev with
      | Some (Json.Number f) -> Some f
      | _ -> None
    in
    let* name =
      match str "name" with
      | Some s when s <> "" -> Ok s
      | _ -> fail "event %d: missing name" i
    in
    let cat = Option.value (str "cat") ~default:"" in
    let* ts =
      match num "ts" with
      | Some f when f >= 0. -> Ok f
      | _ -> fail "event %d: missing or negative ts" i
    in
    let tid =
      match num "tid" with Some f -> int_of_float f | None -> 0
    in
    let* args =
      match Json.member "args" ev with
      | None -> Ok []
      | Some (Json.Obj fields) ->
        if
          List.for_all
            (fun (_, v) -> match v with Json.String _ -> true | _ -> false)
            fields
        then
          Ok
            (List.map
               (fun (k, v) ->
                 match v with Json.String s -> (k, s) | _ -> assert false)
               fields)
        else fail "event %d: non-string arg value" i
      | Some _ -> fail "event %d: args is not an object" i
    in
    let* phase =
      match str "ph" with
      | Some "X" -> (
        match num "dur" with
        | Some d when d >= 0. -> Ok (Complete { dur_ns = ns_of_us d })
        | _ -> fail "event %d: complete event without a dur" i)
      | Some "i" -> Ok Instant
      | Some ph -> fail "event %d: unsupported phase %S" i ph
      | None -> fail "event %d: missing ph" i
    in
    Ok { name; cat; phase; ts_ns = ns_of_us ts; tid; args }
  in
  let rec all i acc = function
    | [] -> Ok (List.rev acc)
    | ev :: rest ->
      let* e = event i ev in
      all (i + 1) (e :: acc) rest
  in
  all 0 [] evs

(* --- human-readable tree ------------------------------------------------ *)

let pp_dur ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Printf.sprintf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1f us" (f /. 1e3)
  else Printf.sprintf "%Ld ns" ns

let render_tree evs =
  let evs = sort evs in
  let tids = List.sort_uniq Int.compare (List.map (fun e -> e.tid) evs) in
  let buf = Buffer.create 1024 in
  List.iter
    (fun tid ->
      Buffer.add_string buf (Printf.sprintf "domain %d\n" tid);
      let stack = ref [] in
      List.iter
        (fun ev ->
          if ev.tid = tid then begin
            (* Pop finished ancestors: ev starts at or after their end. *)
            stack :=
              List.filter (fun e -> Int64.compare ev.ts_ns e < 0) !stack;
            let indent = String.make (2 * (1 + List.length !stack)) ' ' in
            let args =
              if ev.args = [] then ""
              else
                Printf.sprintf "  [%s]"
                  (String.concat " "
                     (List.map (fun (k, v) -> k ^ "=" ^ v) ev.args))
            in
            (match ev.phase with
            | Complete { dur_ns } ->
              Buffer.add_string buf
                (Printf.sprintf "%s%-40s %10s%s\n" indent ev.name
                   (pp_dur dur_ns) args);
              stack := end_ns ev :: !stack
            | Instant ->
              Buffer.add_string buf
                (Printf.sprintf "%s- %s%s\n" indent ev.name args))
          end)
        evs)
    tids;
  Buffer.contents buf
