let last_ns = Atomic.make 0L

let rec monotonize t =
  let prev = Atomic.get last_ns in
  if Int64.compare t prev <= 0 then begin
    (* Clock stood still or stepped back: hand out the next tick so
       ordering stays strict even within one gettimeofday quantum. *)
    let next = Int64.add prev 1L in
    if Atomic.compare_and_set last_ns prev next then next else monotonize t
  end
  else if Atomic.compare_and_set last_ns prev t then t
  else monotonize t

let now_ns () = monotonize (Int64.of_float (Unix.gettimeofday () *. 1e9))
let elapsed_ns ~since = Int64.to_float (Int64.sub (now_ns ()) since)
