module Int_map = Map.Make (Int)

type node = { id : int; name : string; kind : Op.kind }

type t = {
  name : string;
  nodes : node Int_map.t;
  succs : int list Int_map.t;
  preds : int list Int_map.t;
  edge_count : int;
  topo : int list;
}

let adjacency ids edges =
  let empty =
    List.fold_left (fun m id -> Int_map.add id [] m) Int_map.empty ids
  in
  let add m (a, b) =
    Int_map.update a
      (function Some l -> Some (b :: l) | None -> Some [ b ])
      m
  in
  let filled = List.fold_left add empty edges in
  Int_map.map (List.sort_uniq Int.compare) filled

(* Kahn's algorithm with a smallest-id-first frontier so the order is
   deterministic. Returns [Error id] naming a node on a cycle. *)
let kahn_order nodes succs preds =
  let module Int_set = Set.Make (Int) in
  let indegree =
    Int_map.map (fun l -> List.length l) preds |> fun m ->
    Int_map.fold (fun id _ acc -> acc |> Int_map.add id (Int_map.find id m)) nodes Int_map.empty
  in
  let frontier =
    Int_map.fold
      (fun id deg acc -> if deg = 0 then Int_set.add id acc else acc)
      indegree Int_set.empty
  in
  let rec go frontier indegree acc =
    match Int_set.min_elt_opt frontier with
    | None ->
      if List.length acc = Int_map.cardinal nodes then Ok (List.rev acc)
      else
        let on_cycle =
          Int_map.fold
            (fun id deg found ->
              match found with Some _ -> found | None -> if deg > 0 then Some id else None)
            indegree None
        in
        (match on_cycle with
        | Some id -> Error id
        | None -> Ok (List.rev acc) (* unreachable: counts matched *))
    | Some id ->
      let frontier = Int_set.remove id frontier in
      let frontier, indegree =
        List.fold_left
          (fun (f, d) s ->
            let deg = Int_map.find s d - 1 in
            let d = Int_map.add s deg d in
            if deg = 0 then (Int_set.add s f, d) else (f, d))
          (frontier, indegree)
          (Int_map.find id succs)
      in
      go frontier indegree (id :: acc)
  in
  go frontier indegree []

let create ~name ~nodes ~edges =
  let ( let* ) = Result.bind in
  let* node_map =
    List.fold_left
      (fun acc n ->
        let* m = acc in
        if n.id < 0 then Error (Printf.sprintf "node %S has negative id %d" n.name n.id)
        else if Int_map.mem n.id m then
          Error (Printf.sprintf "duplicate node id %d" n.id)
        else Ok (Int_map.add n.id n m))
      (Ok Int_map.empty) nodes
  in
  let* () =
    List.fold_left
      (fun acc (a, b) ->
        let* () = acc in
        if not (Int_map.mem a node_map) then
          Error (Printf.sprintf "edge (%d, %d): unknown source %d" a b a)
        else if not (Int_map.mem b node_map) then
          Error (Printf.sprintf "edge (%d, %d): unknown target %d" a b b)
        else if a = b then Error (Printf.sprintf "self-loop on node %d" a)
        else Ok ())
      (Ok ()) edges
  in
  let sorted_edges = List.sort_uniq compare edges in
  let* () =
    if List.length sorted_edges <> List.length edges then
      Error "duplicate edge"
    else Ok ()
  in
  let ids = List.map (fun n -> n.id) nodes in
  let succs = adjacency ids sorted_edges in
  let preds = adjacency ids (List.map (fun (a, b) -> (b, a)) sorted_edges) in
  let* () =
    Int_map.fold
      (fun id n acc ->
        let* () = acc in
        match n.kind with
        | Op.Input when Int_map.find id preds <> [] ->
          Error (Printf.sprintf "input node %d (%s) has a predecessor" id n.name)
        | Op.Output when Int_map.find id succs <> [] ->
          Error (Printf.sprintf "output node %d (%s) has a successor" id n.name)
        | Op.Input | Op.Output | Op.Add | Op.Sub | Op.Mult | Op.Comp -> Ok ())
      node_map (Ok ())
  in
  let* topo =
    match kahn_order node_map succs preds with
    | Ok order -> Ok order
    | Error id -> Error (Printf.sprintf "graph has a cycle through node %d" id)
  in
  Ok
    {
      name;
      nodes = node_map;
      succs;
      preds;
      edge_count = List.length sorted_edges;
      topo;
    }

let create_exn ~name ~nodes ~edges =
  match create ~name ~nodes ~edges with
  | Ok g -> g
  | Error msg -> invalid_arg (Printf.sprintf "Graph.create_exn (%s): %s" name msg)

let name g = g.name
let node_count g = Int_map.cardinal g.nodes
let edge_count g = g.edge_count
let nodes g = Int_map.bindings g.nodes |> List.map snd
let node_ids g = Int_map.bindings g.nodes |> List.map fst
let mem g id = Int_map.mem id g.nodes

let node g id =
  match Int_map.find_opt id g.nodes with
  | Some n -> n
  | None -> raise Not_found

let find_node g id = Int_map.find_opt id g.nodes
let kind g id = (node g id).kind
let node_name g id = (node g id).name

let edges g =
  Int_map.fold
    (fun a bs acc -> List.fold_left (fun acc b -> (a, b) :: acc) acc bs)
    g.succs []
  |> List.sort compare

let succs g id =
  match Int_map.find_opt id g.succs with Some l -> l | None -> raise Not_found

let preds g id =
  match Int_map.find_opt id g.preds with Some l -> l | None -> raise Not_found

let is_edge g ~src ~dst = mem g src && List.mem dst (succs g src)

let sources g =
  Int_map.fold (fun id ps acc -> if ps = [] then id :: acc else acc) g.preds []
  |> List.rev

let sinks g =
  Int_map.fold (fun id ss acc -> if ss = [] then id :: acc else acc) g.succs []
  |> List.rev

let topological_order g = g.topo

let nodes_of_kind g k =
  Int_map.fold
    (fun id n acc -> if Op.equal n.kind k then id :: acc else acc)
    g.nodes []
  |> List.rev

let kind_counts g =
  let tally =
    List.map (fun k -> (k, List.length (nodes_of_kind g k))) Op.all
  in
  List.filter (fun (_, n) -> n > 0) tally

(* Longest latency-weighted path ending at each node, producers first. *)
let distances_from_source g ~latency =
  List.fold_left
    (fun dist id ->
      let via_pred =
        List.fold_left
          (fun best p -> max best (Int_map.find p dist))
          0 (preds g id)
      in
      Int_map.add id (via_pred + latency id) dist)
    Int_map.empty g.topo

let distances_to_sink g ~latency =
  List.fold_left
    (fun dist id ->
      let via_succ =
        List.fold_left
          (fun best s -> max best (Int_map.find s dist))
          0 (succs g id)
      in
      Int_map.add id (via_succ + latency id) dist)
    Int_map.empty (List.rev g.topo)

let critical_path g ~latency =
  if node_count g = 0 then 0
  else
    Int_map.fold (fun _ d best -> max d best) (distances_from_source g ~latency) 0

let distance_to_sink g ~latency id =
  match Int_map.find_opt id (distances_to_sink g ~latency) with
  | Some d -> d
  | None -> raise Not_found

(* Shadows the map-returning helper above with the exported closure form:
   partial application [distances_to_sink g ~latency] pays the topological
   pass once and each lookup is then a map find. *)
let distances_to_sink g ~latency =
  let dist = distances_to_sink g ~latency in
  fun id ->
    match Int_map.find_opt id dist with Some d -> d | None -> raise Not_found

let distance_from_source g ~latency id =
  match Int_map.find_opt id (distances_from_source g ~latency) with
  | Some d -> d
  | None -> raise Not_found

let reverse g =
  {
    name = g.name ^ "_rev";
    nodes = g.nodes;
    succs = g.preds;
    preds = g.succs;
    edge_count = g.edge_count;
    topo = List.rev g.topo;
  }

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %s: %d nodes, %d edges@," g.name (node_count g)
    (edge_count g);
  List.iter
    (fun n ->
      Format.fprintf ppf "  %3d %-10s %-6s -> %s@," n.id n.name
        (Op.to_string n.kind)
        (String.concat ", " (List.map string_of_int (succs g n.id))))
    (nodes g);
  Format.fprintf ppf "@]"
