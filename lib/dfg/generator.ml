module Int_set = Set.Make (Int)

let pick_kind rng mult_ratio =
  if Random.State.float rng 1.0 < mult_ratio then Op.Mult
  else
    match Random.State.int rng 3 with
    | 0 -> Op.Add
    | 1 -> Op.Sub
    | _ -> Op.Comp

(* Operations are generated layer by layer; each op depends on one or two
   earlier ops picked uniformly, so every node is reachable from layer 0 and
   the graph is acyclic by construction. [used] tracks ops consumed by a later
   op, so the leftovers can be terminated by Output nodes. *)
let layered ~seed ~layers ~width ?(mult_ratio = 0.3) ?(io = true) () =
  if layers < 1 then invalid_arg "Generator.layered: layers < 1";
  if width < 1 then invalid_arg "Generator.layered: width < 1";
  let rng = Random.State.make [| seed; layers; width |] in
  let b = Builder.create (Printf.sprintf "rand_s%d_l%d_w%d" seed layers width) in
  let used = ref Int_set.empty in
  let first_layer =
    let n = 1 + Random.State.int rng width in
    List.init n (fun i ->
        let deps =
          if io then [ Builder.input b (Printf.sprintf "in%d" i) ] else []
        in
        Builder.node b (Printf.sprintf "l0_%d" i) (pick_kind rng mult_ratio) deps)
  in
  let rec grow layer pool =
    if layer >= layers then pool
    else
      let n = 1 + Random.State.int rng width in
      let arr = Array.of_list pool in
      let pick () = arr.(Random.State.int rng (Array.length arr)) in
      let fresh =
        List.init n (fun i ->
            let a = pick () in
            let deps =
              if Random.State.bool rng then
                let c = pick () in
                if c = a then [ a ] else [ a; c ]
              else [ a ]
            in
            List.iter (fun d -> used := Int_set.add d !used) deps;
            Builder.node b
              (Printf.sprintf "l%d_%d" layer i)
              (pick_kind rng mult_ratio) deps)
      in
      grow (layer + 1) (pool @ fresh)
  in
  let ops = grow 1 first_layer in
  if io then
    List.iteri
      (fun i id ->
        if not (Int_set.mem id !used) then
          ignore (Builder.output b (Printf.sprintf "out%d" i) id))
      ops;
  Builder.finish_exn b

(* The shape rng is seeded separately from the layer rng ([layered] re-mixes
   its own seed with layers/width), so nearby seeds still explore different
   shapes. [width <= max_nodes / layers] caps the operation count at
   [max_nodes]. *)
let sized ~seed ~max_nodes ?io () =
  if max_nodes < 1 then invalid_arg "Generator.sized: max_nodes < 1";
  let rng = Random.State.make [| 0x51ED; seed; max_nodes |] in
  let layers = 1 + Random.State.int rng (min 4 max_nodes) in
  let width_cap = max 1 (max_nodes / layers) in
  let width = 1 + Random.State.int rng (min 6 width_cap) in
  let mult_ratio = 0.1 +. Random.State.float rng 0.5 in
  let io =
    match io with Some io -> io | None -> Random.State.bool rng
  in
  layered ~seed:(Random.State.int rng 0x3FFFFFFF) ~layers ~width ~mult_ratio
    ~io ()
