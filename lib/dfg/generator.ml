module Int_set = Set.Make (Int)

let pick_kind rng mult_ratio =
  if Random.State.float rng 1.0 < mult_ratio then Op.Mult
  else
    match Random.State.int rng 3 with
    | 0 -> Op.Add
    | 1 -> Op.Sub
    | _ -> Op.Comp

(* Operations are generated layer by layer; each op depends on one or two
   earlier ops picked uniformly, so every node is reachable from layer 0 and
   the graph is acyclic by construction. [used] tracks ops consumed by a later
   op, so the leftovers can be terminated by Output nodes. *)
let layered ~seed ~layers ~width ?(mult_ratio = 0.3) ?(io = true)
    ?(fill = false) () =
  if layers < 1 then invalid_arg "Generator.layered: layers < 1";
  if width < 1 then invalid_arg "Generator.layered: width < 1";
  let rng = Random.State.make [| seed; layers; width |] in
  let b = Builder.create (Printf.sprintf "rand_s%d_l%d_w%d" seed layers width) in
  let used = ref Int_set.empty in
  (* [fill] pins every layer at exactly [width] operations (no size draw),
     so [layers * width] is the exact operation count — the scaling bench
     needs predictable sizes. Off by default: the draw sequence of existing
     seeds must stay byte-identical. *)
  let layer_size () = if fill then width else 1 + Random.State.int rng width in
  let first_layer =
    let n = layer_size () in
    List.init n (fun i ->
        let deps =
          if io then [ Builder.input b (Printf.sprintf "in%d" i) ] else []
        in
        Builder.node b (Printf.sprintf "l0_%d" i) (pick_kind rng mult_ratio) deps)
  in
  let rec grow layer pool =
    if layer >= layers then pool
    else
      let n = layer_size () in
      let arr = Array.of_list pool in
      let pick () = arr.(Random.State.int rng (Array.length arr)) in
      let fresh =
        List.init n (fun i ->
            let a = pick () in
            let deps =
              if Random.State.bool rng then
                let c = pick () in
                if c = a then [ a ] else [ a; c ]
              else [ a ]
            in
            List.iter (fun d -> used := Int_set.add d !used) deps;
            Builder.node b
              (Printf.sprintf "l%d_%d" layer i)
              (pick_kind rng mult_ratio) deps)
      in
      grow (layer + 1) (pool @ fresh)
  in
  let ops = grow 1 first_layer in
  if io then
    List.iteri
      (fun i id ->
        if not (Int_set.mem id !used) then
          ignore (Builder.output b (Printf.sprintf "out%d" i) id))
      ops;
  Builder.finish_exn b

(* The shape rng is seeded separately from the layer rng ([layered] re-mixes
   its own seed with layers/width), so nearby seeds still explore different
   shapes. [width <= max_nodes / layers] caps the operation count at
   [max_nodes]. *)
let sized ~seed ~max_nodes ?io () =
  if max_nodes < 1 then invalid_arg "Generator.sized: max_nodes < 1";
  let rng = Random.State.make [| 0x51ED; seed; max_nodes |] in
  if max_nodes <= 32 then begin
    (* The historical small-graph regime, byte-identical for every
       (seed, max_nodes) the fuzzer and its pinned campaigns have ever
       drawn: shapes cap at 4 layers of 6 operations. *)
    let layers = 1 + Random.State.int rng (min 4 max_nodes) in
    let width_cap = max 1 (max_nodes / layers) in
    let width = 1 + Random.State.int rng (min 6 width_cap) in
    let mult_ratio = 0.1 +. Random.State.float rng 0.5 in
    let io =
      match io with Some io -> io | None -> Random.State.bool rng
    in
    layered ~seed:(Random.State.int rng 0x3FFFFFFF) ~layers ~width ~mult_ratio
      ~io ()
  end
  else begin
    (* Large-graph regime: draw a layer count around sqrt(max_nodes) and
       fill every layer, so the operation count lands within a few percent
       of [max_nodes] (never above it) instead of the ~width/2 thinning the
       free-running draw produces. *)
    let hi = int_of_float (Float.round (sqrt (float_of_int max_nodes))) in
    let layers = max 2 ((hi / 2) + 1 + Random.State.int rng (max 1 (hi / 2))) in
    let width = max 1 (max_nodes / layers) in
    let mult_ratio = 0.1 +. Random.State.float rng 0.5 in
    let io =
      match io with Some io -> io | None -> Random.State.bool rng
    in
    layered ~seed:(Random.State.int rng 0x3FFFFFFF) ~layers ~width ~mult_ratio
      ~io ~fill:true ()
  end
