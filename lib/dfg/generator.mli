(** Seeded random data-flow graph generation, for property tests and
    scalability benchmarks. All output is deterministic in [seed]. *)

(** [layered ~seed ~layers ~width ()] builds a layered DAG with [layers]
    operation layers of at most [width] nodes each. Every operation depends on
    one or two nodes from earlier layers, so the result is connected and
    acyclic by construction.

    [mult_ratio] (default [0.3]) is the probability that an operation is a
    multiplication; the rest are an even mix of add/sub/comp. When [io] is
    [true] (default), [Input] nodes feed the first layer and every sink gets
    an [Output] consumer. [fill] (default [false]) pins every layer at
    exactly [width] operations instead of drawing a size in [1, width], so
    the operation count is exactly [layers * width] — for benchmarks that
    need predictable graph sizes. The default draw sequence is unchanged by
    the flag.

    @raise Invalid_argument if [layers < 1] or [width < 1]. *)
val layered :
  seed:int -> layers:int -> width:int -> ?mult_ratio:float -> ?io:bool ->
  ?fill:bool -> unit -> Graph.t

(** [sized ~seed ~max_nodes ()] draws a random {e shape} (layer count, layer
    width, multiplication ratio, and — unless [io] is forced — whether the
    graph carries Input/Output nodes) and builds the corresponding
    {!layered} graph. The fuzzer's instance sampler uses it to cover many
    topologies from a single size knob.

    At most [max_nodes] operation nodes are generated; when I/O is on, the
    Input/Output nodes come on top (at most one input per first-layer node
    and one output per sink). Deterministic in [(seed, max_nodes)].

    Two regimes share the cap: for [max_nodes <= 32] the historical
    small-shape draw (at most 4 layers of 6 operations) is preserved
    byte-for-byte, so pinned fuzz campaigns replay identically; above 32
    the shape switches to filled layers around a sqrt(max_nodes) layer
    count, landing the operation count within a few percent of
    [max_nodes] — the scaling benchmark's 100/1k/10k legs.

    @raise Invalid_argument if [max_nodes < 1]. *)
val sized : seed:int -> max_nodes:int -> ?io:bool -> unit -> Graph.t
