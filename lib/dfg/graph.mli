(** Immutable data-flow graphs.

    A graph is a directed acyclic graph whose nodes are operations
    ({!Op.kind}) and whose edges are data dependencies: an edge [(i, j)] means
    operation [j] consumes the value produced by operation [i], so [j] may
    only start once [i] has finished.

    Construction validates all structural invariants once; every value of
    type {!t} is therefore known to be a well-formed DAG. *)

type node = {
  id : int;  (** unique non-negative identifier *)
  name : string;  (** human-readable label, e.g. ["m1"] *)
  kind : Op.kind;
}

type t

(** [create ~name ~nodes ~edges] builds a validated graph.

    Errors when: a node id is negative or duplicated; an edge endpoint does
    not exist; an edge is a self-loop or duplicated; the graph has a cycle;
    an [Input] node has a predecessor; an [Output] node has a successor. *)
val create :
  name:string -> nodes:node list -> edges:(int * int) list -> (t, string) result

(** [create_exn] is {!create} but raises [Invalid_argument] on error. *)
val create_exn : name:string -> nodes:node list -> edges:(int * int) list -> t

val name : t -> string
val node_count : t -> int
val edge_count : t -> int

(** [nodes g] lists all nodes in increasing id order. *)
val nodes : t -> node list

(** [node_ids g] lists all ids in increasing order. *)
val node_ids : t -> int list

val mem : t -> int -> bool

(** [node g id] raises [Not_found] if [id] is absent. *)
val node : t -> int -> node

val find_node : t -> int -> node option
val kind : t -> int -> Op.kind
val node_name : t -> int -> string

(** [edges g] lists all edges, sorted lexicographically. *)
val edges : t -> (int * int) list

val is_edge : t -> src:int -> dst:int -> bool

(** [succs g id] are the direct consumers of [id], in increasing order. *)
val succs : t -> int -> int list

(** [preds g id] are the direct producers feeding [id], in increasing order. *)
val preds : t -> int -> int list

(** [sources g] are the nodes with no predecessor. *)
val sources : t -> int list

(** [sinks g] are the nodes with no successor. *)
val sinks : t -> int list

(** [topological_order g] lists every node id such that producers come before
    consumers. The order is deterministic (smallest-id-first Kahn). *)
val topological_order : t -> int list

(** [nodes_of_kind g k] lists ids of nodes of kind [k], in increasing order. *)
val nodes_of_kind : t -> Op.kind -> int list

(** [kind_counts g] tallies node kinds, listing only kinds that occur. *)
val kind_counts : t -> (Op.kind * int) list

(** [critical_path g ~latency] is the maximum, over all paths, of the summed
    node latencies — i.e. the minimum possible makespan given unlimited
    resources. [latency id] must be positive. *)
val critical_path : t -> latency:(int -> int) -> int

(** [distance_to_sink g ~latency id] is the longest latency-weighted path from
    [id] (inclusive) to any sink. Used as a list-scheduling priority. *)
val distance_to_sink : t -> latency:(int -> int) -> int -> int

(** [distances_to_sink g ~latency] is {!distance_to_sink} for every node at
    once: the partial application [distances_to_sink g ~latency] runs the
    single O(V+E) topological pass, and the returned lookup is a map find.
    Use this when priorities are needed for the whole graph — calling
    {!distance_to_sink} per node recomputes the pass each time. The lookup
    raises [Not_found] on absent ids. *)
val distances_to_sink : t -> latency:(int -> int) -> int -> int

(** [distance_from_source g ~latency id] is the longest latency-weighted path
    from any source up to and including [id]. *)
val distance_from_source : t -> latency:(int -> int) -> int -> int

(** [reverse g] flips every edge. The result intentionally skips the
    Input/Output orientation checks; it is meant for time-reversed
    scheduling (ALAP family), not as a user-facing graph. *)
val reverse : t -> t

val pp : Format.formatter -> t -> unit
