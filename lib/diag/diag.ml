type severity = Error | Warning | Info
type layer = Dfg | Schedule | Binding | Netlist

type entity =
  | Node of int
  | Edge of int * int
  | Kind of string
  | Instance of int
  | Register of int
  | Step of int
  | Design

type t = {
  code : string;
  severity : severity;
  layer : layer;
  entity : entity;
  message : string;
}

let make severity ~code ~layer ~entity fmt =
  Printf.ksprintf (fun message -> { code; severity; layer; entity; message }) fmt

let errorf ~code ~layer ~entity fmt = make Error ~code ~layer ~entity fmt
let warningf ~code ~layer ~entity fmt = make Warning ~code ~layer ~entity fmt
let infof ~code ~layer ~entity fmt = make Info ~code ~layer ~entity fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let layer_to_string = function
  | Dfg -> "dfg"
  | Schedule -> "schedule"
  | Binding -> "binding"
  | Netlist -> "netlist"

let entity_to_string = function
  | Node id -> Printf.sprintf "node %d" id
  | Edge (src, dst) -> Printf.sprintf "edge %d->%d" src dst
  | Kind k -> Printf.sprintf "kind %s" k
  | Instance id -> Printf.sprintf "instance %d" id
  | Register r -> Printf.sprintf "register %d" r
  | Step s -> Printf.sprintf "step %d" s
  | Design -> "design"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let layer_rank = function Dfg -> 0 | Schedule -> 1 | Binding -> 2 | Netlist -> 3

let entity_rank = function
  | Design -> (0, 0, 0, "")
  | Node id -> (1, id, 0, "")
  | Edge (s, d) -> (2, s, d, "")
  | Kind k -> (3, 0, 0, k)
  | Instance id -> (4, id, 0, "")
  | Register r -> (5, r, 0, "")
  | Step s -> (6, s, 0, "")

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Int.compare (layer_rank a.layer) (layer_rank b.layer) in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c
      else
        let c = Stdlib.compare (entity_rank a.entity) (entity_rank b.entity) in
        if c <> 0 then c else String.compare a.message b.message

let sort ds = List.sort_uniq compare ds

let count sev ds =
  List.length (List.filter (fun d -> d.severity = sev) ds)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let to_string d =
  Printf.sprintf "%s[%s] %s %s: %s"
    (severity_to_string d.severity)
    d.code (layer_to_string d.layer)
    (entity_to_string d.entity)
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    {|{"code":"%s","severity":"%s","layer":"%s","entity":"%s","message":"%s"}|}
    (json_escape d.code)
    (severity_to_string d.severity)
    (layer_to_string d.layer)
    (json_escape (entity_to_string d.entity))
    (json_escape d.message)

let list_to_json = function
  | [] -> "[]"
  | ds ->
    let items = List.map (fun d -> "  " ^ to_json d) ds in
    "[\n" ^ String.concat ",\n" items ^ "\n]"

let registry =
  [
    ("DFG001", Error, "the dependency graph contains a cycle");
    ("DFG002", Error, "an edge endpoint names an unknown node");
    ("DFG003", Error, "a data-dependency edge is duplicated");
    ("DFG004", Error, "an edge is a self-loop");
    ("DFG005", Error, "a node id is negative or duplicated");
    ("DFG006", Error, "an operation kind has no implementing module in the library");
    ("DFG007", Warning, "a non-output sink: the computed value is never consumed");
    ("SCH001", Error, "a graph node has no start time");
    ("SCH002", Error, "an operation starts before cycle 0");
    ("SCH003", Error, "an operation starts before a predecessor finishes");
    ("SCH004", Error, "the makespan exceeds the time constraint T");
    ("SCH005", Error, "a cycle draws more than the power constraint P<");
    ("SCH006", Error, "op_info reports a non-positive latency");
    ("SCH007", Warning, "the schedule holds a start time for a node not in the graph");
    ("BND001", Error, "two operations overlap in time on one shared instance");
    ("BND002", Error, "an operation's kind is not implementable by its bound module");
    ("BND003", Error, "a module type exceeds its max_instances cap");
    ("BND004", Error, "two values with overlapping lifetimes share a register");
    ("BND005", Error, "an operation is bound to more than one instance");
    ("BND006", Error, "a binding names an operation not present in the graph");
    ("BND007", Error, "a graph operation is bound to no instance");
    ("BND008", Warning, "an instance hosts no operation (dead functional unit)");
    ("NET001", Error, "a multiply-written register's writer set (mux wiring) is wrong");
    ("NET002", Error, "a functional unit's source-register wiring disagrees with the design");
    ("NET003", Error, "the activation table is inconsistent with the schedule");
    ("NET004", Warning, "a register is dangling: never written or never read");
    ("NET005", Error, "the netlist references an unknown functional unit or register");
    ("PRE001", Error, "an operation kind has no module admissible under the power constraint P<");
    ("PRE002", Error, "the minimum-latency critical path already exceeds the time constraint T");
    ("PRE003", Error, "operations pinned to one cycle must together draw more than P<");
    ("PRE004", Error, "the total minimum execution energy exceeds the T * P< capacity");
    ("PRE005", Info, "preflight bounds summary: latency, power-demand and area bounds");
  ]

let describe code =
  List.find_map
    (fun (c, _, d) -> if String.equal c code then Some d else None)
    registry
