(** Machine-readable diagnostics shared by every verification layer.

    A diagnostic carries a stable code (e.g. ["SCH003"]), a severity, the IR
    layer it concerns, the entity it points at, and a human-readable message.
    Codes never change meaning once published; {!registry} is the canonical
    table (also rendered in [docs/DIAGNOSTICS.md]).

    Diagnostics are plain data: the checkers in [Pchls_analysis] produce
    them, [Schedule.validate] produces them, and the [pchls check] CLI
    renders them as text or JSON. *)

type severity = Error | Warning | Info

(** The IR layer a diagnostic concerns, in pipeline order. *)
type layer = Dfg | Schedule | Binding | Netlist

(** What a diagnostic points at. [Design] marks whole-artifact findings. *)
type entity =
  | Node of int  (** a DFG operation *)
  | Edge of int * int  (** a data dependency *)
  | Kind of string  (** an operation kind, e.g. ["mult"] *)
  | Instance of int  (** a bound functional-unit instance *)
  | Register of int  (** an allocated register *)
  | Step of int  (** a control step / cycle *)
  | Design

type t = {
  code : string;
  severity : severity;
  layer : layer;
  entity : entity;
  message : string;
}

(** [errorf ~code ~layer ~entity fmt ...] builds an [Error] diagnostic with a
    printf-formatted message; {!warningf} and {!infof} likewise. *)
val errorf :
  code:string -> layer:layer -> entity:entity -> ('a, unit, string, t) format4 -> 'a

val warningf :
  code:string -> layer:layer -> entity:entity -> ('a, unit, string, t) format4 -> 'a

val infof :
  code:string -> layer:layer -> entity:entity -> ('a, unit, string, t) format4 -> 'a

val severity_to_string : severity -> string
val layer_to_string : layer -> string

(** [entity_to_string e] — e.g. ["node 3"], ["register 1"], ["design"]. *)
val entity_to_string : entity -> string

(** Total order: errors first, then by layer (pipeline order), code, entity
    and message — so renderings are deterministic regardless of checker
    order. *)
val compare : t -> t -> int

(** [sort ds] orders by {!compare} and drops exact duplicates. *)
val sort : t list -> t list

val count : severity -> t list -> int
val has_errors : t list -> bool

(** ["error[SCH003] schedule node 4: starts before predecessor 2 finishes"] *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** One JSON object with fields [code], [severity], [layer], [entity],
    [message]; {!list_to_json} renders a JSON array, one object per line. *)
val to_json : t -> string

val list_to_json : t list -> string

(** The published code table: (code, severity, one-line description).
    Codes are unique; the table is what [docs/DIAGNOSTICS.md] documents. *)
val registry : (string * severity * string) list

(** [describe code] looks the code's one-line description up. *)
val describe : string -> string option
