(** Schedules: a start time (control step) for every operation.

    Scheduling is decoupled from the functional-unit library through
    {!op_info}: a scheduler only needs each operation's latency and per-cycle
    power, supplied by an [info] function. The synthesis engine derives
    [info] from its current tentative binding. *)

type op_info = {
  latency : int;  (** execution delay in cycles, >= 1 *)
  power : float;  (** power drawn in each executing cycle *)
}

(** Total start-time map, immutable. *)
type t

type violation =
  | Unscheduled of int  (** a graph node has no start time *)
  | Negative_start of int
  | Precedence of { pred : int; succ : int }
      (** [succ] starts before [pred] finishes *)
  | Latency_exceeded of { makespan : int; limit : int }
  | Power_exceeded of { cycle : int; power : float; limit : float }

val empty : t
val of_alist : (int * int) list -> t
val set : t -> int -> int -> t
val mem : t -> int -> bool
val find : t -> int -> int option

(** [start s id] raises [Not_found] when [id] is unscheduled. *)
val start : t -> int -> int

val cardinal : t -> int

(** [bindings s] lists (node, start) pairs in increasing node order. *)
val bindings : t -> (int * int) list

(** [finish s ~info id] is [start + latency]. *)
val finish : t -> info:(int -> op_info) -> int -> int

(** [makespan s ~info] is the maximum finish time over all scheduled
    operations ([0] when empty). *)
val makespan : t -> info:(int -> op_info) -> int

(** [profile s ~info ~horizon] accumulates every scheduled operation's power
    over its execution interval.
    @raise Invalid_argument if an operation's interval leaves the horizon. *)
val profile : t -> info:(int -> op_info) -> horizon:int -> Pchls_power.Profile.t

(** [lint g s ~info ?time_limit ?power_limit ()] checks the schedule is
    total over [g], respects precedences, and fits the optional latency and
    peak-power limits, reporting through the shared diagnostics channel:
    [SCH001] unscheduled node, [SCH002] negative start, [SCH003] precedence
    violation, [SCH004] latency exceeded, [SCH005] per-cycle power exceeded,
    [SCH006] non-positive [op_info] latency, [SCH007] (warning) stray
    schedule entry for a node not in [g]. The list is deterministically
    ordered ({!Pchls_diag.Diag.sort}) and empty for a clean schedule. *)
val lint :
  Pchls_dfg.Graph.t ->
  t ->
  info:(int -> op_info) ->
  ?time_limit:int ->
  ?power_limit:float ->
  unit ->
  Pchls_diag.Diag.t list

(** [validate g s ~info ?time_limit ?power_limit ()] is {!lint} as a result:
    [Ok ()] when no [Error]-severity diagnostic fired, otherwise [Error ds]
    with the full diagnostic list. *)
val validate :
  Pchls_dfg.Graph.t ->
  t ->
  info:(int -> op_info) ->
  ?time_limit:int ->
  ?power_limit:float ->
  unit ->
  (unit, Pchls_diag.Diag.t list) result

(** Deprecated: the pre-diagnostics interface, kept as a thin wrapper during
    the transition. Use {!validate} (or {!lint}) instead. *)
val validate_violations :
  Pchls_dfg.Graph.t ->
  t ->
  info:(int -> op_info) ->
  ?time_limit:int ->
  ?power_limit:float ->
  unit ->
  (unit, violation list) result

(** [diag_of_violation v] maps a legacy {!violation} to its diagnostic. *)
val diag_of_violation : violation -> Pchls_diag.Diag.t

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
