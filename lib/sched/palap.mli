(** Power-constrained ALAP scheduling — the paper's [palap], the
    time-reversed dual of {!Pasap}.

    Every operation is placed as late as possible within [horizon] while
    respecting the per-cycle power limit. Implemented by running {!Pasap} on
    the reversed graph and mirroring start times: [t = horizon - t_rev - d].
    With the default infinite [power_limit] this is classic ALAP. *)

(** [run g ~info ~horizon ?power_limit ?locked ?cancelled ()] — same
    contract as {!Pasap.run}; [locked] times are in the original (forward)
    time domain. *)
val run :
  Pchls_dfg.Graph.t ->
  info:(int -> Schedule.op_info) ->
  horizon:int ->
  ?power_limit:float ->
  ?locked:(int * int) list ->
  ?cancelled:(unit -> bool) ->
  unit ->
  Pasap.outcome
