module Graph = Pchls_dfg.Graph
module Profile = Pchls_power.Profile
module Pqueue = Pchls_compat.Pqueue
module Trace = Pchls_obs.Trace
module Metrics = Pchls_obs.Metrics

let m_runs = Metrics.counter "pasap.runs"
let m_offset_delays = Metrics.counter "pasap.offset_delays"
let m_infeasible = Metrics.counter "pasap.infeasible"

type outcome =
  | Feasible of Schedule.t
  | Infeasible of { node : int; reason : string }

let schedule_exn = function
  | Feasible s -> s
  | Infeasible { node; reason } ->
    failwith (Printf.sprintf "pasap infeasible at node %d: %s" node reason)

(* The scheduler keeps, for each ready operation, its earliest precedence-
   feasible start [est] (fixed once all predecessors are placed) and its
   power offset [o]; the tentative start is [est + o]. *)
type ready = { id : int; est : int; mutable offset : int; priority : int }

exception Stop of outcome

(* Heap entries snapshot the tentative start at push time; an entry whose
   snapshot no longer matches [est + offset] (the operation was re-pushed
   at a later start) or whose operation has been placed is stale and is
   dropped on pop — lazy deletion. The ordering reproduces the total order
   the old Hashtbl.fold selection used: earliest tentative start first,
   then highest priority, then lowest id. *)
type entry = { e_t : int; e_priority : int; e_id : int }

let entry_cmp a b =
  if a.e_t <> b.e_t then Int.compare a.e_t b.e_t
  else if a.e_priority <> b.e_priority then Int.compare b.e_priority a.e_priority
  else Int.compare a.e_id b.e_id

let run g ~info ~horizon ?(power_limit = infinity) ?(locked = [])
    ?(cancelled = fun () -> false) () =
  if horizon < 0 then invalid_arg "Pasap.run: negative horizon";
  List.iter
    (fun (id, _) ->
      if not (Graph.mem g id) then
        invalid_arg (Printf.sprintf "Pasap.run: locked node %d not in graph" id))
    locked;
  if
    List.length (List.sort_uniq Int.compare (List.map fst locked))
    <> List.length locked
  then invalid_arg "Pasap.run: node locked twice";
  Metrics.incr m_runs;
  Trace.span ~cat:"sched" "pasap.run" @@ fun () ->
  let latency id = (info id).Schedule.latency in
  (* One topological pass for every priority, not one pass per node. *)
  let priority_of = Graph.distances_to_sink g ~latency in
  let profile = Profile.create ~horizon in
  let sched = ref Schedule.empty in
  let remaining_preds = Hashtbl.create 64 in
  let ready : (int, ready) Hashtbl.t = Hashtbl.create 64 in
  let heap = Pqueue.create ~cmp:entry_cmp in
  let push r =
    Pqueue.add heap { e_t = r.est + r.offset; e_priority = r.priority; e_id = r.id }
  in
  let locked_tbl = Hashtbl.create 16 in
  List.iter (fun (id, t) -> Hashtbl.replace locked_tbl id t) locked;
  let is_locked id = Hashtbl.mem locked_tbl id in
  try
    (* Reserve the locked operations first. *)
    Hashtbl.iter
      (fun id t ->
        let { Schedule.latency = d; power } = info id in
        if t < 0 || t + d > horizon then
          raise
            (Stop
               (Infeasible
                  { node = id; reason = "locked start leaves the horizon" }));
        Profile.add profile ~start:t ~latency:d ~power;
        sched := Schedule.set !sched id t)
      locked_tbl;
    if Profile.peak profile > power_limit +. Profile.eps then begin
      let offender =
        match locked with (id, _) :: _ -> id | [] -> -1
      in
      raise
        (Stop
           (Infeasible
              {
                node = offender;
                reason = "locked operations alone exceed the power limit";
              }))
    end;
    List.iter
      (fun id ->
        if not (is_locked id) then
          let unplaced =
            List.length (List.filter (fun p -> not (is_locked p)) (Graph.preds g id))
          in
          Hashtbl.replace remaining_preds id unplaced)
      (Graph.node_ids g);
    let est_of id =
      List.fold_left
        (fun acc p -> max acc (Schedule.start !sched p + latency p))
        0 (Graph.preds g id)
    in
    let enter id =
      if Hashtbl.find remaining_preds id = 0 then begin
        let r = { id; est = est_of id; offset = 0; priority = priority_of id } in
        Hashtbl.replace ready id r;
        push r
      end
    in
    List.iter
      (fun id -> if not (is_locked id) then enter id)
      (Graph.node_ids g);
    let place r =
      let t = r.est + r.offset in
      let { Schedule.latency = d; power } = info r.id in
      sched := Schedule.set !sched r.id t;
      Profile.add profile ~start:t ~latency:d ~power;
      Hashtbl.remove ready r.id;
      List.iter
        (fun s ->
          if not (is_locked s) then begin
            let n = Hashtbl.find remaining_preds s - 1 in
            Hashtbl.replace remaining_preds s n;
            if n = 0 then enter s
          end)
        (Graph.succs g r.id)
    in
    let rec loop () =
      (* Cooperative cancellation: polled once per heap pop, so a deadline
         interrupts even a pathologically power-bound schedule. *)
      if cancelled () then
        raise (Stop (Infeasible { node = -1; reason = "cancelled" }));
      match Pqueue.pop heap with
      | None -> ()
      | Some e -> (
        match Hashtbl.find_opt ready e.e_id with
        | None -> loop () (* already placed; stale entry *)
        | Some r when r.est + r.offset <> e.e_t -> loop () (* superseded *)
        | Some r ->
          let t = r.est + r.offset in
          let { Schedule.latency = d; power } = info r.id in
          if t + d > horizon then
            raise
              (Stop
                 (Infeasible
                    {
                      node = r.id;
                      reason =
                        Printf.sprintf
                          "no power-feasible start in [%d, %d] within horizon %d"
                          r.est (horizon - d) horizon;
                    }));
          if Profile.fits profile ~start:t ~latency:d ~power ~limit:power_limit
          then place r
          else begin
            (* The paper's power-feasibility delay loop, batched: the
               profile only ever gains power while an operation waits, so
               every start the current profile rejects stays rejected — the
               whole run of doomed one-cycle bumps can be taken at once via
               [first_fit]. The operation is re-tested when its new start
               reaches the head of the heap (the profile may have hardened
               since, pushing it further right), so placements interleave
               exactly as they would under one-at-a-time bumping. The
               offset-delay counter still advances by one per skipped
               cycle — it remains the direct measure of how power-bound the
               schedule is. *)
            let next =
              match
                Profile.first_fit profile ~start:t ~latency:d ~power
                  ~limit:power_limit
              with
              | Some s -> s
              | None ->
                (* No fit within the horizon under the current profile: the
                   old loop would bump cycle-by-cycle to the first start
                   past the horizon and report infeasibility only when that
                   entry surfaced — after any other operation with an
                   earlier tentative start had its own chance to fail. Park
                   the entry there to preserve that order. *)
                horizon - d + 1
            in
            Metrics.incr ~by:(next - t) m_offset_delays;
            r.offset <- r.offset + (next - t);
            push r
          end;
          loop ())
    in
    loop ();
    (* Locked operations may have been placed inconsistently with their
       (possibly later-scheduled) predecessors; reject such schedules. *)
    List.iter
      (fun (pred, succ) ->
        if
          is_locked succ
          && Schedule.start !sched pred + latency pred
             > Schedule.start !sched succ
        then
          raise
            (Stop
               (Infeasible
                  {
                    node = succ;
                    reason =
                      Printf.sprintf "locked start precedes end of predecessor %d"
                        pred;
                  })))
      (Graph.edges g);
    Feasible !sched
  with Stop o ->
    Metrics.incr m_infeasible;
    (match o with
    | Infeasible { node; reason } ->
      if Trace.observed () then
        Trace.instant ~cat:"sched"
          ~args:[ ("node", string_of_int node); ("reason", reason) ]
          "pasap.infeasible"
    | Feasible _ -> ());
    o
