(** Power-constrained ASAP scheduling — the paper's [pasap] algorithm (§2).

    Operations are scheduled as soon as possible, but an operation may only
    occupy cycles whose remaining power budget admits it: when the interval
    [[t_i+o_i, t_i+o_i+d_i)] would overflow the per-cycle limit, the
    operation's offset [o_i] grows one cycle at a time until the interval
    fits or leaves the horizon (infeasible).

    With [power_limit = infinity] (the default) this degenerates to classic
    ASAP. Ready operations are chosen deterministically: smallest tentative
    start first, then largest latency-weighted distance to a sink, then
    smallest id. *)

type outcome =
  | Feasible of Schedule.t
  | Infeasible of { node : int; reason : string }
      (** [node] could not be placed within the horizon *)

(** [run g ~info ~horizon ?power_limit ?locked ()] schedules every node of
    [g].

    [locked] pre-places operations at fixed start times (the paper's
    backtracking locks all unscheduled operations to the last valid pasap
    schedule); their power is reserved before anything else is placed, and a
    locked operation violating a precedence or the horizon makes the run
    infeasible.

    [cancelled] is polled once per placement or offset bump; when it turns
    true the run stops with [Infeasible {node = -1; reason = "cancelled"}].
    This is how {!Pchls_core.Engine} deadlines interrupt a scheduler stuck
    in the power-feasibility delay loop mid-iteration.

    @raise Invalid_argument if [horizon < 0], or a locked id is not in [g],
    or is locked twice. *)
val run :
  Pchls_dfg.Graph.t ->
  info:(int -> Schedule.op_info) ->
  horizon:int ->
  ?power_limit:float ->
  ?locked:(int * int) list ->
  ?cancelled:(unit -> bool) ->
  unit ->
  outcome

(** [schedule_exn outcome] extracts the schedule.
    @raise Failure on [Infeasible]. *)
val schedule_exn : outcome -> Schedule.t
