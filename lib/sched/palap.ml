module Graph = Pchls_dfg.Graph
module Trace = Pchls_obs.Trace
module Metrics = Pchls_obs.Metrics

let m_runs = Metrics.counter "palap.runs"

(* palap is pasap on the reversed graph, so its span encloses a pasap.run
   span and its delay bumps land in the shared pasap.offset_delays
   counter. *)
let run g ~info ~horizon ?power_limit ?(locked = []) ?cancelled () =
  Metrics.incr m_runs;
  Trace.span ~cat:"sched" "palap.run" @@ fun () ->
  let mirror id t = horizon - t - (info id).Schedule.latency in
  let locked_rev = List.map (fun (id, t) -> (id, mirror id t)) locked in
  match
    Pasap.run (Graph.reverse g) ~info ~horizon ?power_limit ~locked:locked_rev
      ?cancelled ()
  with
  | Pasap.Infeasible _ as inf -> inf
  | Pasap.Feasible rev ->
    let fwd =
      List.fold_left
        (fun acc (id, t_rev) -> Schedule.set acc id (mirror id t_rev))
        Schedule.empty (Schedule.bindings rev)
    in
    Pasap.Feasible fwd
