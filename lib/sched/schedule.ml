module Graph = Pchls_dfg.Graph
module Profile = Pchls_power.Profile
module Int_map = Map.Make (Int)

type op_info = { latency : int; power : float }
type t = int Int_map.t

type violation =
  | Unscheduled of int
  | Negative_start of int
  | Precedence of { pred : int; succ : int }
  | Latency_exceeded of { makespan : int; limit : int }
  | Power_exceeded of { cycle : int; power : float; limit : float }

let empty = Int_map.empty
let of_alist l = List.fold_left (fun m (k, v) -> Int_map.add k v m) empty l
let set s id t = Int_map.add id t s
let mem s id = Int_map.mem id s
let find s id = Int_map.find_opt id s

let start s id =
  match find s id with Some t -> t | None -> raise Not_found

let cardinal s = Int_map.cardinal s
let bindings s = Int_map.bindings s
let finish s ~info id = start s id + (info id).latency

let makespan s ~info =
  Int_map.fold (fun id t acc -> max acc (t + (info id).latency)) s 0

let profile s ~info ~horizon =
  let p = Profile.create ~horizon in
  Int_map.iter
    (fun id t ->
      let { latency; power } = info id in
      Profile.add p ~start:t ~latency ~power)
    s;
  p

(* Makespan over the nodes of [g] only, so a stray schedule entry never has
   its [info] consulted. *)
let graph_makespan g s ~info =
  List.fold_left
    (fun acc id ->
      match find s id with
      | Some t -> max acc (t + (info id).latency)
      | None -> acc)
    0 (Graph.node_ids g)

let violations g s ~info ?time_limit ?power_limit () =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  List.iter
    (fun id ->
      match find s id with
      | None -> push (Unscheduled id)
      | Some t -> if t < 0 then push (Negative_start id))
    (Graph.node_ids g);
  List.iter
    (fun (pred, succ) ->
      match (find s pred, find s succ) with
      | Some tp, Some ts ->
        if tp + (info pred).latency > ts then push (Precedence { pred; succ })
      | None, _ | _, None -> ())
    (Graph.edges g);
  let ms = graph_makespan g s ~info in
  (match time_limit with
  | Some limit when ms > limit -> push (Latency_exceeded { makespan = ms; limit })
  | Some _ | None -> ());
  (match power_limit with
  | Some limit ->
    let p = Profile.create ~horizon:(max ms 1) in
    List.iter
      (fun id ->
        match find s id with
        | Some t when t >= 0 ->
          let { latency; power } = info id in
          if t + latency <= max ms 1 then Profile.add p ~start:t ~latency ~power
        | Some _ | None -> ())
      (Graph.node_ids g);
    Array.iteri
      (fun cycle power ->
        if power > limit +. Profile.eps then
          push (Power_exceeded { cycle; power; limit }))
      (Profile.to_array p)
  | None -> ());
  List.rev !violations

let validate_violations g s ~info ?time_limit ?power_limit () =
  match violations g s ~info ?time_limit ?power_limit () with
  | [] -> Ok ()
  | vs -> Error vs

let diag_of_violation v =
  let open Pchls_diag.Diag in
  match v with
  | Unscheduled id ->
    errorf ~code:"SCH001" ~layer:Schedule ~entity:(Node id)
      "node %d has no start time" id
  | Negative_start id ->
    errorf ~code:"SCH002" ~layer:Schedule ~entity:(Node id)
      "node %d starts before cycle 0" id
  | Precedence { pred; succ } ->
    errorf ~code:"SCH003" ~layer:Schedule ~entity:(Edge (pred, succ))
      "node %d starts before predecessor %d finishes" succ pred
  | Latency_exceeded { makespan; limit } ->
    errorf ~code:"SCH004" ~layer:Schedule ~entity:Design
      "makespan %d exceeds time constraint %d" makespan limit
  | Power_exceeded { cycle; power; limit } ->
    errorf ~code:"SCH005" ~layer:Schedule ~entity:(Step cycle)
      "cycle %d draws %.3f > power constraint %.3f" cycle power limit

let lint g s ~info ?time_limit ?power_limit () =
  let open Pchls_diag.Diag in
  let bad_latency =
    List.filter_map
      (fun id ->
        let { latency; _ } = info id in
        if latency < 1 then
          Some
            (errorf ~code:"SCH006" ~layer:Schedule ~entity:(Node id)
               "op_info reports latency %d for node %d (must be >= 1)" latency
               id)
        else None)
      (Graph.node_ids g)
  in
  let stray =
    List.filter_map
      (fun (id, t) ->
        if Graph.mem g id then None
        else
          Some
            (warningf ~code:"SCH007" ~layer:Schedule ~entity:(Node id)
               "schedule holds start %d for node %d, which is not in graph %s"
               t id (Graph.name g)))
      (bindings s)
  in
  (* A non-positive latency poisons the power profile; report it alone and
     skip the per-cycle check rather than crash on it. *)
  let power_limit = if bad_latency = [] then power_limit else None in
  let vs = violations g s ~info ?time_limit ?power_limit () in
  sort (bad_latency @ stray @ List.map diag_of_violation vs)

let validate g s ~info ?time_limit ?power_limit () =
  let ds = lint g s ~info ?time_limit ?power_limit () in
  if Pchls_diag.Diag.has_errors ds then Error ds else Ok ()

let pp_violation ppf = function
  | Unscheduled id -> Format.fprintf ppf "node %d unscheduled" id
  | Negative_start id -> Format.fprintf ppf "node %d starts before cycle 0" id
  | Precedence { pred; succ } ->
    Format.fprintf ppf "node %d starts before predecessor %d finishes" succ pred
  | Latency_exceeded { makespan; limit } ->
    Format.fprintf ppf "makespan %d exceeds time constraint %d" makespan limit
  | Power_exceeded { cycle; power; limit } ->
    Format.fprintf ppf "cycle %d draws %.3f > power constraint %.3f" cycle power
      limit

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Int_map.iter (fun id t -> Format.fprintf ppf "%3d @@ %d@," id t) s;
  Format.fprintf ppf "@]"
