(** Per-cycle power profiles.

    A profile records, for every control step in [0, horizon), the total
    power drawn by the operations executing in that step. It doubles as the
    power-budget ledger of the power-constrained schedulers: placing an
    operation reserves its power over its execution interval, and the
    feasibility test of the paper's pasap step 3 is {!fits}.

    Values of this type are mutable buffers (the schedulers update them in
    place); use {!copy} before speculative work. All power comparisons use
    the tolerance {!eps} so accumulated floating-point error never flips a
    feasibility decision. *)

type t

(** Comparison tolerance: [1e-9]. *)
val eps : float

(** [create ~horizon] is an all-zero profile over [horizon] cycles.
    @raise Invalid_argument if [horizon < 0]. *)
val create : horizon:int -> t

val horizon : t -> int
val copy : t -> t

(** [get p c] is the power drawn in cycle [c].
    @raise Invalid_argument if [c] is outside [0, horizon). *)
val get : t -> int -> float

(** [add p ~start ~latency ~power] reserves [power] in each cycle of
    [start, start+latency).
    @raise Invalid_argument if the interval leaves [0, horizon) or
    [latency < 1] or [power < 0]. *)
val add : t -> start:int -> latency:int -> power:float -> unit

(** [remove p ~start ~latency ~power] undoes a matching {!add}. *)
val remove : t -> start:int -> latency:int -> power:float -> unit

(** [fits p ~start ~latency ~power ~limit] is [true] when adding the
    operation would keep every cycle of its interval at or below [limit]
    (within {!eps}). Intervals that leave [0, horizon) never fit. *)
val fits : t -> start:int -> latency:int -> power:float -> limit:float -> bool

(** [first_fit p ~start ~latency ~power ~limit] is the smallest start
    [s >= start] at which the whole interval [s, s+latency) fits (same
    verdict as {!fits} at every candidate), or [None] when no start keeps
    the interval inside the horizon. Single forward scan: a violation at
    cycle [c] rules out every start whose window covers [c], so the search
    resumes at [c+1] — O(horizon) total instead of per-offset rescans.
    @raise Invalid_argument if [latency < 1], [power < 0] or [start < 0]. *)
val first_fit :
  t -> start:int -> latency:int -> power:float -> limit:float -> int option

(** [peak p] is the maximum per-cycle power ([0.] for an empty profile). *)
val peak : t -> float

(** [peak_cycle p] is the first cycle attaining {!peak}, or [None] when the
    profile is all-zero. *)
val peak_cycle : t -> int option

(** [busy_length p] is one past the last cycle with non-zero power ([0] when
    all-zero). *)
val busy_length : t -> int

(** [average p] is mean power over [0, busy_length p) — [0.] when idle. *)
val average : t -> float

(** [energy p] is the sum over all cycles (power × one cycle). *)
val energy : t -> float

val to_array : t -> float array

(** [of_array a] copies [a].
    @raise Invalid_argument on a negative entry. *)
val of_array : float array -> t

(** [render ?width ?limit p] draws one text row per cycle as a horizontal bar
    chart scaled to [width] columns (default 50); [limit] adds a [|] marker
    at the constraint position. *)
val render : ?width:int -> ?limit:float -> t -> string

val pp : Format.formatter -> t -> unit
