(* The per-cycle array stays the single source of truth — every feasibility
   decision reads the same floats as before — but a block-max summary (one
   float per [block] cycles, always the true maximum of its block) lets the
   hot probes skip whole blocks. Soundness rests on [+.] being weakly
   monotone: if [bmax +. power <= limit +. eps] then every cycle [v <= bmax]
   in the block satisfies [v +. power <= limit +. eps] too, so skipping the
   block reaches exactly the per-cycle verdict. When the summary test fails
   the code falls back to the per-cycle scan, so no decision ever differs
   from the naive implementation. *)

type t = { cycles : float array; block_max : float array }

let eps = 1e-9
let block = 32
let block_count horizon = (horizon + block - 1) / block

let create ~horizon =
  if horizon < 0 then invalid_arg "Profile.create: negative horizon";
  { cycles = Array.make horizon 0.; block_max = Array.make (block_count horizon) 0. }

let horizon p = Array.length p.cycles
let copy p = { cycles = Array.copy p.cycles; block_max = Array.copy p.block_max }

(* Recompute one block's max by scanning its cycles — needed after
   [remove], which can lower the max. *)
let rescan_block p b =
  let lo = b * block in
  let hi = min (lo + block) (horizon p) - 1 in
  let m = ref 0. in
  for c = lo to hi do
    if p.cycles.(c) > !m then m := p.cycles.(c)
  done;
  p.block_max.(b) <- !m

let check_cycle p c who =
  if c < 0 || c >= horizon p then
    invalid_arg (Printf.sprintf "Profile.%s: cycle %d outside [0, %d)" who c (horizon p))

let get p c =
  check_cycle p c "get";
  p.cycles.(c)

let check_interval p ~start ~latency ~power who =
  if latency < 1 then invalid_arg (Printf.sprintf "Profile.%s: latency < 1" who);
  if power < 0. then invalid_arg (Printf.sprintf "Profile.%s: negative power" who);
  if start < 0 || start + latency > horizon p then
    invalid_arg
      (Printf.sprintf "Profile.%s: interval [%d, %d) outside [0, %d)" who start
         (start + latency) (horizon p))

let add p ~start ~latency ~power =
  check_interval p ~start ~latency ~power "add";
  for c = start to start + latency - 1 do
    let v = p.cycles.(c) +. power in
    p.cycles.(c) <- v;
    let b = c / block in
    if v > p.block_max.(b) then p.block_max.(b) <- v
  done

let remove p ~start ~latency ~power =
  check_interval p ~start ~latency ~power "remove";
  for c = start to start + latency - 1 do
    let v = p.cycles.(c) -. power in
    p.cycles.(c) <- (if Float.abs v < eps then 0. else v)
  done;
  for b = start / block to (start + latency - 1) / block do
    rescan_block p b
  done

let fits p ~start ~latency ~power ~limit =
  if latency < 1 || power < 0. then
    invalid_arg "Profile.fits: latency < 1 or negative power"
  else if start < 0 || start + latency > horizon p then false
  else begin
    let stop = start + latency in
    let ok = ref true in
    let c = ref start in
    while !ok && !c < stop do
      let b = !c / block in
      if p.block_max.(b) +. power <= limit +. eps then
        (* Whole block passes; jump to its end (or the interval's). *)
        c := min ((b + 1) * block) stop
      else if p.cycles.(!c) +. power <= limit +. eps then incr c
      else ok := false
    done;
    !ok
  end

(* [first_fit] finds the smallest start >= [start] whose whole interval
   fits, or [None] when no such start keeps the interval inside the
   horizon. On a violation at cycle [c] every candidate start <= [c]
   whose window covers [c] fails too, so the scan restarts at [c + 1] —
   each cycle is inspected at most once, O(horizon) overall instead of
   O(horizon * latency). *)
let first_fit p ~start ~latency ~power ~limit =
  if latency < 1 || power < 0. then
    invalid_arg "Profile.first_fit: latency < 1 or negative power";
  if start < 0 then invalid_arg "Profile.first_fit: negative start";
  let h = horizon p in
  let rec go s c =
    if s + latency > h then None
    else if c >= s + latency then Some s
    else begin
      let b = c / block in
      if p.block_max.(b) +. power <= limit +. eps then
        go s (min ((b + 1) * block) (s + latency))
      else if p.cycles.(c) +. power <= limit +. eps then go s (c + 1)
      else go (c + 1) (c + 1)
    end
  in
  go start start

let peak p = Array.fold_left max 0. p.block_max

let peak_cycle p =
  let top = peak p in
  if top <= eps then None
  else
    let rec find c = if p.cycles.(c) >= top -. eps then Some c else find (c + 1) in
    find 0

let busy_length p =
  (* Walk blocks from the top; a block whose max is <= eps holds no busy
     cycle, so only the first busy block from the right is scanned. *)
  let rec last_block b =
    if b < 0 then 0
    else if p.block_max.(b) <= eps then last_block (b - 1)
    else begin
      let rec last c =
        if c < b * block then last_block (b - 1)
        else if p.cycles.(c) > eps then c + 1
        else last (c - 1)
      in
      last (min ((b + 1) * block) (horizon p) - 1)
    end
  in
  last_block (Array.length p.block_max - 1)

let energy p = Array.fold_left ( +. ) 0. p.cycles

let average p =
  let n = busy_length p in
  if n = 0 then 0. else energy p /. float_of_int n

let to_array p = Array.copy p.cycles

let of_array a =
  Array.iter
    (fun v -> if v < 0. then invalid_arg "Profile.of_array: negative entry")
    a;
  let p = { cycles = Array.copy a; block_max = Array.make (block_count (Array.length a)) 0. } in
  for b = 0 to Array.length p.block_max - 1 do
    rescan_block p b
  done;
  p

let render ?(width = 50) ?limit p =
  let scale_top =
    match limit with
    | Some l -> Float.max l (peak p)
    | None -> peak p
  in
  let scale_top = if scale_top <= eps then 1. else scale_top in
  let buf = Buffer.create 256 in
  let mark =
    match limit with
    | Some l ->
      Some (int_of_float (Float.round (l /. scale_top *. float_of_int width)))
    | None -> None
  in
  Array.iteri
    (fun c v ->
      let bar = int_of_float (Float.round (v /. scale_top *. float_of_int width)) in
      Buffer.add_string buf (Printf.sprintf "%3d %6.2f " c v);
      for col = 1 to width do
        if col <= bar then Buffer.add_char buf '#'
        else
          match mark with
          | Some m when col = m -> Buffer.add_char buf '|'
          | Some _ | None -> Buffer.add_char buf ' '
      done;
      Buffer.add_char buf '\n')
    p.cycles;
  Buffer.contents buf

let pp ppf p =
  Format.fprintf ppf "@[<v>profile over %d cycles, peak %.2f, avg %.2f@]"
    (horizon p) (peak p) (average p)
