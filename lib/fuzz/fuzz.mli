(** The fuzzing campaign driver behind [pchls fuzz].

    A campaign is [runs] independent cases. Case [i] samples an instance
    ({!Sampler.sample}, deterministic in [(seed, i)]), checks it against
    every oracle ({!Oracle.check}), and on failure minimizes it
    ({!Shrink.minimize}) and persists the repro ({!Corpus.write}). Cases
    run in parallel on a {!Pchls_par.Pool} — every step is a pure function
    of the case index, so the campaign's result and rendering are
    byte-identical whatever [jobs] is.

    Observability: each case runs under a ["fuzz.case"] trace span, and the
    campaign feeds the [fuzz.cases], [fuzz.feasible], [fuzz.infeasible],
    [fuzz.failures] and [fuzz.exact_skips] counters plus the
    [fuzz.case_ns] histogram in {!Pchls_obs.Metrics}. *)

type config = {
  runs : int;  (** cases to execute, >= 1 *)
  seed : int;  (** campaign seed; same seed = same campaign *)
  jobs : int;  (** worker domains, >= 1 *)
  max_nodes : int;  (** sampler size cap, see {!Sampler.sample} *)
  exact_max_vertices : int;  (** exact-oracle cutoff, see {!Oracle.check} *)
  library : Pchls_fulib.Library.t;
  corpus : string option;  (** where to persist minimized repros *)
  deadline : Pchls_resil.Budget.t option;
      (** campaign budget: cases reached after it expires are skipped (and
          tallied), never half-run *)
}

(** [runs = 100], [seed = 0], [jobs = 1], [max_nodes = 10],
    [exact_max_vertices = 12], the paper's library, no corpus, no
    deadline. *)
val default_config : config

type finding = {
  case : int;
  original : Sampler.instance;
  shrunk : Sampler.instance;
  failure : Oracle.failure;  (** the shrunk instance's failure *)
  bucket : string;
  path : string option;  (** corpus file, when a corpus dir was given *)
}

type summary = {
  runs : int;
  feasible : int;
  infeasible : int;
  exact_checked : int;
  exact_skipped : int;  (** instances above the exact-oracle cutoff *)
  faulted : int;
      (** cases killed by an injected fault ({!Pchls_resil.Fault}) on both
          pool attempts — chaos noise, deliberately not a finding *)
  deadline_skipped : int;  (** cases skipped after the deadline expired *)
  findings : finding list;  (** in case order *)
}

(** [run config] executes the campaign. [Error] on an unusable config
    (e.g. a library that does not cover the generator's operation kinds)
    without running anything.

    Cases run isolated on the pool ({!Pchls_par.Pool.try_map}): a case
    killed twice by an armed ["pool.worker"] fault counts as [faulted]
    rather than aborting the campaign or forging a finding, while any
    other crash of the harness itself is re-raised (earliest case
    first). *)
val run : config -> (summary, string) result

(** Deterministic multi-line report: one summary line, then one block per
    finding. Exactly the [pchls fuzz] output. *)
val render_summary : summary -> string

type replay_result = {
  path : string;
  outcome : [ `Fixed | `Still_failing of Oracle.failure | `Unreadable of string ];
}

type replay_summary = {
  total : int;
  still_failing : int;
  unreadable : int;
  results : replay_result list;  (** in path order *)
}

(** [replay ~library ~corpus] re-checks every corpus repro against the
    current engine — the corpus regression gate: a repro that fails again
    means a fixed bug came back. [Error] when [corpus] does not exist. *)
val replay :
  ?exact_max_vertices:int ->
  library:Pchls_fulib.Library.t ->
  corpus:string ->
  unit ->
  (replay_summary, string) result

val render_replay : replay_summary -> string
