module Graph = Pchls_dfg.Graph
module Builder = Pchls_dfg.Builder
module Library = Pchls_fulib.Library
module Pool = Pchls_par.Pool
module Trace = Pchls_obs.Trace
module Metrics = Pchls_obs.Metrics
module Budget = Pchls_resil.Budget
module Fault = Pchls_resil.Fault

type config = {
  runs : int;
  seed : int;
  jobs : int;
  max_nodes : int;
  exact_max_vertices : int;
  library : Library.t;
  corpus : string option;
  deadline : Budget.t option;
}

let default_config =
  {
    runs = 100;
    seed = 0;
    jobs = 1;
    max_nodes = 10;
    exact_max_vertices = 12;
    library = Library.default;
    corpus = None;
    deadline = None;
  }

type finding = {
  case : int;
  original : Sampler.instance;
  shrunk : Sampler.instance;
  failure : Oracle.failure;
  bucket : string;
  path : string option;
}

type summary = {
  runs : int;
  feasible : int;
  infeasible : int;
  exact_checked : int;
  exact_skipped : int;
  faulted : int;
  deadline_skipped : int;
  findings : finding list;
}

let m_cases = Metrics.counter "fuzz.cases"
let m_feasible = Metrics.counter "fuzz.feasible"
let m_infeasible = Metrics.counter "fuzz.infeasible"
let m_failures = Metrics.counter "fuzz.failures"
let m_exact_skips = Metrics.counter "fuzz.exact_skips"
let m_faulted = Metrics.counter "fuzz.faulted"
let m_deadline_skips = Metrics.counter "fuzz.deadline_skips"
let m_case_ns = Metrics.histogram ~buckets:Metrics.ns_buckets "fuzz.case_ns"

(* The generator only emits these kinds; a library that cannot host them
   would turn every case into a spurious crash finding, so refuse upfront. *)
let coverage_probe =
  let b = Builder.create "coverage_probe" in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let s = Builder.add b "s" x y in
  let d = Builder.sub b "d" x y in
  let m = Builder.mult b "m" s d in
  let c = Builder.comp b "c" m s in
  let _ = Builder.output b "out" c in
  Builder.finish_exn b

type case_outcome =
  | Skipped_deadline  (** the campaign budget expired before this case ran *)
  | Checked of {
      o_case : int;
      verdict : Oracle.verdict;
      (* (original, (shrunk, shrunk's failure)) when the case failed *)
      minimized :
        (Sampler.instance * (Sampler.instance * Oracle.failure)) option;
    }

let checked_case config case =
  Metrics.time m_case_ns @@ fun () ->
  Trace.span ~cat:"fuzz"
    ~args:(if Trace.observed () then [ ("case", string_of_int case) ] else [])
    "fuzz.case"
  @@ fun () ->
  Metrics.incr m_cases;
  let inst =
    Sampler.sample ~library:config.library ~seed:config.seed ~case
      ~max_nodes:config.max_nodes ()
  in
  let check i =
    Oracle.check ~exact_max_vertices:config.exact_max_vertices
      ~library:config.library i
  in
  match check inst with
  | Oracle.Pass { feasible; exact } as verdict ->
    Metrics.incr (if feasible then m_feasible else m_infeasible);
    if exact = Oracle.Skipped then Metrics.incr m_exact_skips;
    Checked { o_case = case; verdict; minimized = None }
  | Oracle.Fail failure as verdict ->
    Metrics.incr m_failures;
    let bucket = Oracle.bucket failure in
    let predicate i =
      match check i with Oracle.Fail f -> Some f | Oracle.Pass _ -> None
    in
    Trace.instant ~cat:"fuzz" ~args:[ ("bucket", bucket) ] "fuzz.failure";
    let minimized = Shrink.minimize ~predicate ~bucket inst in
    Checked { o_case = case; verdict; minimized = Some (inst, minimized) }

let check_case config case =
  match config.deadline with
  | Some b when Budget.exhausted b ->
    Metrics.incr m_deadline_skips;
    Skipped_deadline
  | Some _ | None -> checked_case config case

let run (config : config) =
  if config.runs < 1 then Error "fuzz: runs must be >= 1"
  else if config.jobs < 1 then Error "fuzz: jobs must be >= 1"
  else
    match Library.covers config.library coverage_probe with
    | Error kinds ->
      Error
        (Printf.sprintf "fuzz: library covers no module for: %s"
           (String.concat ", " (List.map Pchls_dfg.Op.to_string kinds)))
    | Ok () ->
      (* [try_map] isolates per-case crashes: an injected fault that kills
         both attempts of a case is tallied as [faulted] (the chaos leg in
         CI relies on a fault never masquerading as an oracle finding); any
         other crash is a real harness bug and is re-raised — earliest case
         first, since try_map preserves input order. *)
      let outcomes =
        Trace.span ~cat:"fuzz" "fuzz.campaign" @@ fun () ->
        Pool.with_pool ~jobs:config.jobs (fun pool ->
            Pool.try_map ~retries:1 pool (check_case config)
              (List.init config.runs Fun.id))
      in
      (match
         List.find_map
           (function
             | Error (f : Pool.failure) -> (
               match f.exn with
               | Fault.Injected _ -> None
               | _ -> Some f)
             | Ok _ -> None)
           outcomes
       with
      | Some f -> Printexc.raise_with_backtrace f.exn f.backtrace
      | None -> ());
      let summary =
        List.fold_left
          (fun acc outcome ->
            match outcome with
            | Error (_ : Pool.failure) ->
              Metrics.incr m_faulted;
              { acc with faulted = acc.faulted + 1 }
            | Ok Skipped_deadline ->
              { acc with deadline_skipped = acc.deadline_skipped + 1 }
            | Ok (Checked o) -> (
              match o.verdict with
              | Oracle.Pass { feasible; exact } ->
                {
                  acc with
                  feasible = (acc.feasible + if feasible then 1 else 0);
                  infeasible = (acc.infeasible + if feasible then 0 else 1);
                  exact_checked =
                    (acc.exact_checked
                    + match exact with Oracle.Checked -> 1 | _ -> 0);
                  exact_skipped =
                    (acc.exact_skipped
                    + match exact with Oracle.Skipped -> 1 | _ -> 0);
                }
              | Oracle.Fail _ ->
                let original, (shrunk, failure) =
                  match o.minimized with
                  | Some (original, m) -> (original, m)
                  | None -> assert false
                in
                let bucket = Oracle.bucket failure in
                (* Exact-oracle skips are re-counted from the shrink side as
                   passes; a failing case contributes to no pass counter. *)
                let path =
                  Option.map
                    (fun dir -> Corpus.write ~dir shrunk failure)
                    config.corpus
                in
                {
                  acc with
                  findings =
                    { case = o.o_case; original; shrunk; failure; bucket; path }
                    :: acc.findings;
                }))
          {
            runs = config.runs;
            feasible = 0;
            infeasible = 0;
            exact_checked = 0;
            exact_skipped = 0;
            faulted = 0;
            deadline_skipped = 0;
            findings = [];
          }
          outcomes
      in
      Ok { summary with findings = List.rev summary.findings }

let render_summary s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "fuzz: %d runs: %d feasible, %d infeasible, %d exact-checked, %d \
        exact-skipped, %d failures%s%s\n"
       s.runs s.feasible s.infeasible s.exact_checked s.exact_skipped
       (List.length s.findings)
       (* Chaos / deadline tallies only appear when nonzero, so ordinary
          campaign output stays byte-identical. *)
       (if s.faulted > 0 then Printf.sprintf ", %d faulted" s.faulted else "")
       (if s.deadline_skipped > 0 then
          Printf.sprintf ", %d deadline-skipped" s.deadline_skipped
        else ""));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "FAIL case %d [%s]: %s\n" f.case f.bucket
           f.failure.Oracle.detail);
      Buffer.add_string buf
        (Format.asprintf "  original: %a\n" Sampler.pp f.original);
      Buffer.add_string buf
        (Format.asprintf "  shrunk:   %a\n" Sampler.pp f.shrunk);
      match f.path with
      | Some path -> Buffer.add_string buf ("  repro: " ^ path ^ "\n")
      | None -> ())
    s.findings;
  Buffer.contents buf

type replay_result = {
  path : string;
  outcome : [ `Fixed | `Still_failing of Oracle.failure | `Unreadable of string ];
}

type replay_summary = {
  total : int;
  still_failing : int;
  unreadable : int;
  results : replay_result list;
}

let replay ?(exact_max_vertices = 12) ~library ~corpus () =
  match Corpus.files ~dir:corpus with
  | Error _ as e -> e |> Result.map_error Fun.id
  | Ok paths ->
    let results =
      List.map
        (fun path ->
          match Corpus.read path with
          | Error msg -> { path; outcome = `Unreadable msg }
          | Ok (inst, _recorded) -> (
            match Oracle.check ~exact_max_vertices ~library inst with
            | Oracle.Pass _ -> { path; outcome = `Fixed }
            | Oracle.Fail f -> { path; outcome = `Still_failing f }))
        paths
    in
    Ok
      {
        total = List.length results;
        still_failing =
          List.length
            (List.filter
               (fun r ->
                 match r.outcome with `Still_failing _ -> true | _ -> false)
               results);
        unreadable =
          List.length
            (List.filter
               (fun r ->
                 match r.outcome with `Unreadable _ -> true | _ -> false)
               results);
        results;
      }

let render_replay s =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      match r.outcome with
      | `Fixed -> Buffer.add_string buf (Printf.sprintf "PASS %s\n" r.path)
      | `Still_failing f ->
        Buffer.add_string buf
          (Printf.sprintf "FAIL %s: %s\n" r.path f.Oracle.detail)
      | `Unreadable msg ->
        Buffer.add_string buf (Printf.sprintf "ERROR %s: %s\n" r.path msg))
    s.results;
  Buffer.add_string buf
    (Printf.sprintf "replay: %d repros, %d fixed, %d still failing%s\n"
       s.total
       (s.total - s.still_failing - s.unreadable)
       s.still_failing
       (if s.unreadable > 0 then Printf.sprintf ", %d unreadable" s.unreadable
        else ""));
  Buffer.contents buf
