module Graph = Pchls_dfg.Graph
module Text_format = Pchls_dfg.Text_format
module Fingerprint = Pchls_cache.Fingerprint
module Atomic_io = Pchls_resil.Atomic_io

(* Shortest representation that still round-trips exactly. *)
let float_to_text p =
  if p = infinity then "inf"
  else
    let short = Printf.sprintf "%.12g" p in
    if float_of_string short = p then short else Printf.sprintf "%.17g" p

let float_of_text s =
  if s = "inf" then Some infinity
  else match float_of_string_opt s with Some p when p > 0. -> Some p | _ -> None

(* Details are free-form engine text; headers are line-oriented. *)
let one_line s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let fingerprint inst =
  Fingerprint.combine
    [
      Fingerprint.graph inst.Sampler.graph;
      Fingerprint.of_string (string_of_int inst.Sampler.time_limit);
      Fingerprint.of_string (Fingerprint.float_repr inst.Sampler.power_limit);
    ]

let write ~dir inst failure =
  let bucket = Oracle.bucket failure in
  let bucket_dir = Filename.concat dir bucket in
  Atomic_io.mkdirs bucket_dir;
  let name = String.sub (fingerprint inst) 0 12 ^ ".repro" in
  let path = Filename.concat bucket_dir name in
  (* Atomic publish: a crash mid-write (or two concurrent campaigns
     minimizing to the same instance) must never leave a truncated repro
     that poisons every later replay. *)
  Atomic_io.with_out path (fun oc ->
      Printf.fprintf oc "# pchls-fuzz repro v1\n";
      Printf.fprintf oc "# bucket: %s\n" bucket;
      Printf.fprintf oc "# oracle: %s\n" failure.Oracle.oracle;
      Printf.fprintf oc "# code: %s\n" failure.Oracle.code;
      Printf.fprintf oc "# detail: %s\n" (one_line failure.Oracle.detail);
      Printf.fprintf oc "# case: %d\n" inst.Sampler.case;
      Printf.fprintf oc "# time_limit: %d\n" inst.Sampler.time_limit;
      Printf.fprintf oc "# power_limit: %s\n"
        (float_to_text inst.Sampler.power_limit);
      output_string oc (Text_format.to_string inst.Sampler.graph));
  path

let header_value lines key =
  let prefix = "# " ^ key ^ ": " in
  List.find_map
    (fun line ->
      if String.length line >= String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        Some
          (String.sub line (String.length prefix)
             (String.length line - String.length prefix))
      else None)
    lines

let read path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    let lines = String.split_on_char '\n' text in
    let require key =
      match header_value lines key with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "%s: missing '# %s:' header" path key)
    in
    let ( let* ) = Result.bind in
    let* oracle = require "oracle" in
    let* code = require "code" in
    let detail = Option.value ~default:"" (header_value lines "detail") in
    let* t_text = require "time_limit" in
    let* p_text = require "power_limit" in
    let* time_limit =
      match int_of_string_opt t_text with
      | Some t when t >= 1 -> Ok t
      | _ -> Error (Printf.sprintf "%s: bad time_limit %S" path t_text)
    in
    let* power_limit =
      match float_of_text p_text with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "%s: bad power_limit %S" path p_text)
    in
    match Text_format.of_string text with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok graph ->
      Ok
        ( { Sampler.case = -1; graph; time_limit; power_limit },
          { Oracle.oracle; code; detail } ))

let files ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "corpus directory %s does not exist" dir)
  else begin
    let rec walk acc path =
      if Sys.is_directory path then
        Array.fold_left
          (fun acc entry -> walk acc (Filename.concat path entry))
          acc (Sys.readdir path)
      else if Filename.check_suffix path ".repro" then path :: acc
      else acc
    in
    Ok (List.sort String.compare (walk [] dir))
  end
