module Graph = Pchls_dfg.Graph
module Op = Pchls_dfg.Op
module Library = Pchls_fulib.Library
module Module_spec = Pchls_fulib.Module_spec
module Schedule = Pchls_sched.Schedule
module Profile = Pchls_power.Profile
module Cgraph = Pchls_compat.Cgraph
module Exact = Pchls_compat.Exact
module Engine = Pchls_core.Engine
module Design = Pchls_core.Design
module Analysis = Pchls_analysis.Analysis
module Diag = Pchls_diag.Diag
module Preflight = Pchls_preflight.Preflight

type exact_status = Checked | Skipped | Not_run

type failure = { oracle : string; code : string; detail : string }

type verdict = Pass of { feasible : bool; exact : exact_status } | Fail of failure

let bucket f =
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> c
        | _ -> '_')
      s
  in
  sanitize f.oracle ^ "-" ^ sanitize f.code

let exact_fu_floor ?(max_vertices = 12) ~library d =
  let g = Design.graph d in
  let ids = Array.of_list (Graph.node_ids g) in
  let n = Array.length ids in
  if n > max_vertices then None
  else begin
    let sched = Design.schedule d in
    let interval i =
      let id = ids.(i) in
      let s = Schedule.start sched id in
      (s, s + (Design.info d id).Schedule.latency)
    in
    let kind i = Graph.kind g ids.(i) in
    let specs = Library.to_list library in
    let cg = Cgraph.create ~n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let su, eu = interval u and sv, ev = interval v in
        let disjoint = eu <= sv || ev <= su in
        let shareable =
          List.exists
            (fun m ->
              Module_spec.implements m (kind u)
              && Module_spec.implements m (kind v))
            specs
        in
        if disjoint && shareable then Cgraph.add_edge cg u v 1.0
      done
    done;
    let cost members =
      let kinds = List.sort_uniq Op.compare (List.map kind members) in
      let area =
        List.fold_left
          (fun acc m ->
            if List.for_all (Module_spec.implements m) kinds then
              Float.min acc m.Module_spec.area
            else acc)
          infinity specs
      in
      if Float.is_finite area then Some area else None
    in
    Option.map snd (Exact.min_area ~max_vertices ~cost cg)
  end

(* [eps] headroom on float comparisons so the oracle never flags
   accumulated rounding as a violation. *)
let area_eps = 1e-6

(* The sound-bounds invariant: preflight's lower bounds must never exceed
   what the engine actually achieved, its upper bound never undercut it,
   every certificate must re-verify from scratch, and — the pruning safety
   property — preflight must never call an instance infeasible that the
   engine just synthesized (a "false prune"). [design = None] when the
   engine reported infeasible: there is nothing to bracket, but the
   certificates still have to verify. *)
let preflight_failure ~exact_max_vertices ~library ~graph ~time_limit
    ~power_limit design =
  let fail code fmt =
    Printf.ksprintf
      (fun detail -> Some { oracle = "preflight"; code; detail })
      fmt
  in
  match
    Preflight.analyze ~exact_max_vertices ~library ~time_limit ~power_limit
      graph
  with
  | exception e -> fail "crash" "%s" (Printexc.to_string e)
  | pf -> (
    let bad_certificate =
      List.find_map
        (fun c ->
          match Preflight.verify ~library ~time_limit ~power_limit graph c with
          | Ok () -> None
          | Error e ->
            fail "bad_certificate" "%s: %s" (Preflight.certificate_code c) e)
        pf.Preflight.certificates
    in
    match (bad_certificate, design) with
    | Some _, _ -> bad_certificate
    | None, None -> None
    | None, Some d -> (
      if Preflight.infeasible pf then
        fail "false_prune" "engine synthesized but preflight proved: %s"
          (match Preflight.first_certificate pf with
          | Some c -> Preflight.certificate_to_string c
          | None -> "?")
      else
        match pf.Preflight.bounds with
        | None ->
          fail "no_bounds" "no certificate fired yet bounds are missing"
        | Some b ->
          let makespan = Design.makespan d in
          let peak = Profile.peak (Design.profile d) in
          let fu = (Design.area d).Design.fu in
          if b.Preflight.latency_lb > makespan then
            fail "latency_lb" "latency lower bound %d exceeds makespan %d"
              b.Preflight.latency_lb makespan
          else if b.Preflight.demand_peak > peak +. Profile.eps then
            fail "power_lb" "demand lower bound %g exceeds achieved peak %g"
              b.Preflight.demand_peak peak
          else if b.Preflight.energy_lb > Design.energy d +. area_eps then
            fail "energy_lb" "energy lower bound %g exceeds design energy %g"
              b.Preflight.energy_lb (Design.energy d)
          else if b.Preflight.fu_area_lb > fu +. area_eps then
            fail "area_lb" "FU-area lower bound %g exceeds FU area %g"
              b.Preflight.fu_area_lb fu
          else if fu > b.Preflight.fu_area_ub +. area_eps then
            fail "area_ub" "FU area %g exceeds upper bound %g" fu
              b.Preflight.fu_area_ub
          else None))

let check ?(exact_max_vertices = 12) ~library inst =
  let { Sampler.graph; time_limit; power_limit; _ } = inst in
  let preflight design =
    preflight_failure ~exact_max_vertices ~library ~graph ~time_limit
      ~power_limit design
  in
  match
    Engine.run ~library ~time_limit ~power_limit graph
  with
  | exception e ->
    let code =
      String.map (fun c -> if c = '.' then '_' else c) (Printexc.exn_slot_name e)
    in
    Fail { oracle = "crash"; code; detail = Printexc.to_string e }
  | Engine.Infeasible _ -> (
    match preflight None with
    | Some f -> Fail f
    | None -> Pass { feasible = false; exact = Not_run })
  | Engine.Synthesized (d, _) -> (
    let ds = Analysis.run_all ~library d in
    match List.filter (fun d -> d.Diag.severity = Diag.Error) ds with
    | first :: _ ->
      Fail
        {
          oracle = "lint";
          code = first.Diag.code;
          detail = Diag.to_string first;
        }
    | [] ->
      let makespan = Design.makespan d in
      if makespan > time_limit then
        Fail
          {
            oracle = "latency";
            code = "makespan";
            detail =
              Printf.sprintf "makespan %d exceeds requested T=%d" makespan
                time_limit;
          }
      else
        let peak = Profile.peak (Design.profile d) in
        if peak > power_limit +. Profile.eps then
          Fail
            {
              oracle = "power";
              code = "peak";
              detail =
                Printf.sprintf "peak power %g exceeds requested P<=%g" peak
                  power_limit;
            }
        else
          let finish exact =
            match preflight (Some d) with
            | Some f -> Fail f
            | None -> Pass { feasible = true; exact }
          in
          (match exact_fu_floor ~max_vertices:exact_max_vertices ~library d with
          | None -> finish Skipped
          | Some floor ->
            let fu = (Design.area d).Design.fu in
            if fu < floor -. area_eps then
              Fail
                {
                  oracle = "exact";
                  code = "fu_area";
                  detail =
                    Printf.sprintf
                      "FU area %g beats the exact optimum %g — sharing is \
                       mis-counted"
                      fu floor;
                }
            else finish Checked))
