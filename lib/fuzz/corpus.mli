(** On-disk corpus of minimized repros.

    Layout: one directory per failure bucket, one [.repro] file per
    distinct minimized instance:

    {v
    corpus/
      power-peak/
        1a2b3c4d5e6f.repro
      lint-SCH005/
        0f9e8d7c6b5a.repro
    v}

    A repro file is the instance's DFG in {!Pchls_dfg.Text_format} syntax,
    preceded by [# key: value] header comments carrying the constraints and
    the failure that produced it — so any repro can also be fed straight to
    [pchls synth --file]. File names are the first 12 hex digits of the
    content fingerprint ({!Pchls_cache.Fingerprint}) of (graph, T, P<):
    re-finding the same minimized instance never duplicates an entry, and
    names are stable across runs and machines. *)

(** [write ~dir inst failure] persists [inst] under its failure's bucket
    (creating directories as needed) and returns the file path. The write
    is atomic ({!Pchls_resil.Atomic_io}): readers and replays never
    observe a partially written repro. *)
val write : dir:string -> Sampler.instance -> Oracle.failure -> string

(** [read path] parses a repro file back into the instance (with
    [case = -1]) and the recorded failure. *)
val read : string -> (Sampler.instance * Oracle.failure, string) result

(** [files ~dir] lists every [.repro] file under [dir] (recursively),
    sorted by path for deterministic replay order. [Error] when [dir] does
    not exist. *)
val files : dir:string -> (string list, string) result
