module Graph = Pchls_dfg.Graph
module Generator = Pchls_dfg.Generator
module Library = Pchls_fulib.Library
module Module_spec = Pchls_fulib.Module_spec
module Schedule = Pchls_sched.Schedule
module Asap = Pchls_sched.Asap
module Profile = Pchls_power.Profile

type instance = {
  case : int;
  graph : Graph.t;
  time_limit : int;
  power_limit : float;
}

let equal a b =
  Graph.name a.graph = Graph.name b.graph
  && Graph.nodes a.graph = Graph.nodes b.graph
  && Graph.edges a.graph = Graph.edges b.graph
  && a.time_limit = b.time_limit
  && a.power_limit = b.power_limit

let pp ppf i =
  Format.fprintf ppf "%d nodes, %d edges, T=%d, P<=%g"
    (Graph.node_count i.graph) (Graph.edge_count i.graph) i.time_limit
    i.power_limit

let min_over_candidates ~library ~f k =
  match Library.candidates library k with
  | [] -> invalid_arg "Sampler: library does not cover a generated kind"
  | ms -> List.fold_left (fun acc m -> Float.min acc (f m)) infinity ms

let round1 x = Float.max 0.1 (Float.round (x *. 10.) /. 10.)

let sample ~library ~seed ~case ?(max_nodes = 10) () =
  let rng = Random.State.make [| 0xFA22; seed; case |] in
  let graph =
    Generator.sized ~seed:(Random.State.int rng 0x3FFFFFFF) ~max_nodes ()
  in
  let min_latency id =
    int_of_float
      (min_over_candidates ~library
         ~f:(fun m -> float_of_int m.Module_spec.latency)
         (Graph.kind graph id))
  in
  let min_power_info id =
    match Library.min_power library (Graph.kind graph id) with
    | Some m ->
      { Schedule.latency = m.Module_spec.latency; power = m.Module_spec.power }
    | None -> invalid_arg "Sampler: library does not cover a generated kind"
  in
  (* Feasibility landmarks: the min-latency critical path bounds T from
     below; the unconstrained min-power ASAP peak is the power level above
     which P< stops binding; the largest per-operation power floor is the
     level below which some operation cannot run at all. *)
  let cp = Graph.critical_path graph ~latency:min_latency in
  let asap = Asap.run graph ~info:min_power_info in
  let horizon = Schedule.makespan asap ~info:min_power_info in
  let peak =
    Profile.peak (Schedule.profile asap ~info:min_power_info ~horizon)
  in
  let power_floor =
    List.fold_left
      (fun acc id ->
        Float.max acc
          (min_over_candidates ~library
             ~f:(fun m -> m.Module_spec.power)
             (Graph.kind graph id)))
      0. (Graph.node_ids graph)
  in
  let time_limit =
    let r = Random.State.float rng 1.0 in
    if r < 0.2 then max 1 (cp - 1 - Random.State.int rng 2)
    else if r < 0.7 then cp + Random.State.int rng 3
    else cp + 1 + Random.State.int rng (cp + 5)
  in
  let power_limit =
    let r = Random.State.float rng 1.0 in
    if r < 0.15 then infinity
    else if r < 0.35 then
      round1 (power_floor *. (0.3 +. Random.State.float rng 0.65))
    else if r < 0.8 then
      round1
        (power_floor
        +. Random.State.float rng (Float.max 0.5 (peak -. power_floor)))
    else round1 (peak *. (1.0 +. Random.State.float rng 1.0))
  in
  { case; graph; time_limit; power_limit }
