module Graph = Pchls_dfg.Graph

type predicate = Sampler.instance -> Oracle.failure option

(* Removing a node (with incident edges) or an edge cannot invalidate a
   well-formed DAG — no cycle, self-loop, duplicate, or Input/Output
   orientation violation can appear by deletion — so [create] only fails on
   the empty graph, which we never propose. *)
let drop_node inst id =
  let g = inst.Sampler.graph in
  let nodes = List.filter (fun n -> n.Graph.id <> id) (Graph.nodes g) in
  match nodes with
  | [] -> None
  | _ ->
    let edges =
      List.filter (fun (a, b) -> a <> id && b <> id) (Graph.edges g)
    in
    (match Graph.create ~name:(Graph.name g) ~nodes ~edges with
    | Ok graph -> Some { inst with Sampler.graph = graph }
    | Error _ -> None)

let drop_edge inst (src, dst) =
  let g = inst.Sampler.graph in
  let edges = List.filter (fun e -> e <> (src, dst)) (Graph.edges g) in
  match Graph.create ~name:(Graph.name g) ~nodes:(Graph.nodes g) ~edges with
  | Ok graph -> Some { inst with Sampler.graph = graph }
  | Error _ -> None

(* Candidate simplifications in a fixed order; the first one preserving the
   failure is taken and the scan restarts. Node drops go highest-id first —
   generated graphs allocate sinks last, so this peels the graph from its
   outputs inward, which converges quickest in practice. *)
let candidates inst =
  let g = inst.Sampler.graph in
  let node_drops =
    List.rev_map (fun id () -> drop_node inst id) (Graph.node_ids g)
  in
  let edge_drops = List.map (fun e () -> drop_edge inst e) (Graph.edges g) in
  let loosen =
    (if Float.is_finite inst.Sampler.power_limit then
       [ (fun () -> Some { inst with Sampler.power_limit = infinity }) ]
     else [])
    @
    (* Doubling stops at a small cap so repro constraints stay readable —
       past that, T is clearly not what the failure depends on. *)
    if inst.Sampler.time_limit < 64 then
      [
        (fun () ->
          Some { inst with Sampler.time_limit = inst.Sampler.time_limit * 2 });
      ]
    else []
  in
  node_drops @ edge_drops @ loosen

let minimize ?(max_steps = 200) ~predicate ~bucket inst =
  let fails i =
    match predicate i with
    | Some f when Oracle.bucket f = bucket -> Some f
    | Some _ | None -> None
  in
  let f0 =
    match fails inst with
    | Some f -> f
    | None ->
      invalid_arg
        (Printf.sprintf "Shrink.minimize: instance does not fail in bucket %s"
           bucket)
  in
  let rec go inst failure steps =
    if steps >= max_steps then (inst, failure)
    else
      let rec first = function
        | [] -> None
        | c :: rest -> (
          match c () with
          | None -> first rest
          | Some cand -> (
            match fails cand with
            | Some f -> Some (cand, f)
            | None -> first rest))
      in
      match first (candidates inst) with
      | Some (smaller, f) -> go smaller f (steps + 1)
      | None -> (inst, failure)
  in
  go inst f0 0
