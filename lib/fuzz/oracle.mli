(** The differential oracles the fuzzer checks every synthesized design
    against. A design that the engine claims is feasible must:

    - {b lint}: produce zero [Error]-severity diagnostics under
      {!Pchls_analysis.Analysis.run_all};
    - {b latency}: finish within the {e requested} time limit;
    - {b power}: never draw more than the {e requested} per-cycle power cap
      (note: requested, not the design's own claimed cap — a buggy engine
      may claim a different cap than it was asked for, which internal
      validation cannot see);
    - {b exact}: spend at least as much functional-unit area as the exact
      branch-and-bound optimum ({!Pchls_compat.Exact.min_area}) for the
      design's own schedule — a heuristic that beats the optimum has
      mis-counted sharing. Checked only on instances small enough for the
      exponential search; larger instances are counted as {e skipped}, not
      as passes;
    - {b preflight}: the static bounds ({!Pchls_preflight.Preflight}) must
      bracket the engine's actuals — [latency_lb <= makespan],
      [demand_peak <= peak], [energy_lb <= energy],
      [fu_area_lb <= FU area <= fu_area_ub] — every certificate must
      re-verify from scratch, and preflight must never prove infeasible an
      instance the engine just synthesized (sub-code ["false_prune"]: the
      sweep-pruning safety property). On engine-infeasible instances only
      the certificate re-verification applies.

    An engine exception on a valid instance is its own failure class
    ({b crash}). *)

type exact_status =
  | Checked  (** the exact oracle ran and agreed *)
  | Skipped  (** instance above [exact_max_vertices] — not a pass *)
  | Not_run  (** synthesis was infeasible; nothing to compare *)

type failure = {
  oracle : string;
      (** ["crash" | "lint" | "latency" | "power" | "exact" | "preflight"] *)
  code : string;  (** stable sub-code, e.g. ["SCH005"], ["false_prune"] *)
  detail : string;  (** human-readable, single line *)
}

type verdict = Pass of { feasible : bool; exact : exact_status } | Fail of failure

(** [bucket f] is the stable corpus bucket id ["<oracle>-<code>"], with any
    character outside [A-Za-z0-9_-] replaced by [_]. Failures that shrink
    to the same (oracle, code) pair land in the same bucket. *)
val bucket : failure -> string

(** [exact_fu_floor ~library d] is the exact minimum functional-unit area
    achievable for [d]'s own schedule: vertices are [d]'s operations, two
    operations are compatible when their execution intervals are disjoint
    and some library module implements both kinds, and a clique costs the
    cheapest module implementing every member's kind. [None] when the
    design has more than [max_vertices] (default [12]) operations. *)
val exact_fu_floor :
  ?max_vertices:int ->
  library:Pchls_fulib.Library.t ->
  Pchls_core.Design.t ->
  float option

(** [check ~library inst] synthesizes [inst] and runs every oracle, in the
    order crash, lint, latency, power, exact, preflight; the first violated
    oracle wins. [exact_max_vertices] is {!exact_fu_floor}'s cutoff, and
    also the preflight analysis's exact-area cutoff. *)
val check :
  ?exact_max_vertices:int ->
  library:Pchls_fulib.Library.t ->
  Sampler.instance ->
  verdict
