(** Delta-debugging minimizer for failing fuzz instances.

    Given an instance whose {!Oracle.check} (or any caller-supplied
    predicate) fails, [minimize] greedily applies the first
    failure-preserving simplification and restarts, until no candidate
    preserves the failure:

    - drop one node (with its incident edges), highest id first;
    - drop one edge;
    - loosen the constraints: set [P<] to [infinity], double [T] (up to a
      small cap, so repros stay readable).

    The failure must stay in the same {!Oracle.bucket}, so shrinking never
    wanders from the original bug to a different one. The search is fully
    deterministic (no randomness), never returns an instance with more
    nodes or edges than the input, and the result still fails the
    predicate. *)

type predicate = Sampler.instance -> Oracle.failure option

(** [minimize ~predicate ~bucket inst] shrinks [inst], accepting at most
    [max_steps] (default [200]) simplifications. Returns the minimized
    instance and its (bucket-equal) failure.

    @raise Invalid_argument when [predicate inst] itself does not fail in
    [bucket] — minimizing a non-failure is a caller bug. *)
val minimize :
  ?max_steps:int ->
  predicate:predicate ->
  bucket:string ->
  Sampler.instance ->
  Sampler.instance * Oracle.failure
