(** Deterministic sampling of synthesis instances for the differential
    fuzzer: a random DFG plus a (T, P<) constraint pair drawn to sit near
    the feasibility boundary, where the engine's backtracking heuristics
    actually fire.

    Everything is a pure function of [(seed, case)] — re-running a campaign
    with the same seed replays the exact same instances, whatever the
    worker-pool parallelism. *)

type instance = {
  case : int;  (** index within the campaign; [-1] for corpus repros *)
  graph : Pchls_dfg.Graph.t;
  time_limit : int;  (** >= 1 *)
  power_limit : float;  (** > 0; [infinity] = unconstrained *)
}

(** Structural equality: graph name, nodes, edges, and both constraints. *)
val equal : instance -> instance -> bool

(** ["14 nodes, 18 edges, T=9, P<=10.5"] *)
val pp : Format.formatter -> instance -> unit

(** [sample ~library ~seed ~case ()] draws the [case]-th instance of the
    campaign [seed]. The DFG comes from {!Pchls_dfg.Generator.sized} (at
    most [max_nodes] operation nodes, default [10], plus I/O nodes when the
    drawn shape has them). The constraint sampler computes the graph's
    min-latency critical path [cp] and the peak of an unconstrained
    min-power ASAP schedule, then draws:

    - [T]: below [cp] (likely infeasible), in [cp, cp+2] (tight), or loose;
    - [P<]: [infinity], below the largest per-operation power floor (likely
      infeasible), inside the tight [floor, peak] band, or above [peak].

    Finite power limits are rounded to one decimal so repro files stay
    readable. [library] supplies the module characteristics the boundary
    estimates are computed from — use the same library the engine will be
    run with. *)
val sample :
  library:Pchls_fulib.Library.t ->
  seed:int ->
  case:int ->
  ?max_nodes:int ->
  unit ->
  instance
