(** Content-addressed memoization of synthesis results.

    A store maps [(fingerprint, time_limit, power_limit)] keys to a
    {!summary} of the engine outcome: either the area/peak plus the exact
    instance binding (enough to rebuild the full design via
    [Design.assemble]), or the infeasibility reason. Two tiers:

    - an in-memory hash table, always on;
    - an optional on-disk tier under [dir/v1/] (one small text file per
      entry, written atomically via {!Pchls_resil.Atomic_io}). Entries
      whose header does not match the current format version, or that fail
      to parse, are quarantined to [<entry>.bad] and counted in
      [stats.corrupt] — a cache never errors, it only misses. A disk I/O
      error (or an armed ["cache.read"] / ["cache.write"] fault point)
      permanently disables the disk tier for this store with a one-shot
      stderr warning ([stats.degraded]); the memory tier keeps working, so
      synthesis degrades to cache-off instead of aborting.

    All operations are thread-safe: a store may be shared by the worker
    domains of a {!Pchls_par.Pool} sweep. Hits, misses and stores are
    counted ({!stats}) and additionally logged through {!Logs} at debug
    level under the ["pchls.cache"] source. *)

type key = {
  fingerprint : Fingerprint.t;
      (** digest of graph + library + cost model + policy *)
  time_limit : int;
  power_limit : float;
}

type summary =
  | Feasible of {
      area : float;
      peak : float;
      instances : (Pchls_fulib.Module_spec.t * (int * int) list) list;
          (** module spec and its [(operation, start time)] bindings — the
              exact shape [Design.assemble] consumes *)
    }
  | Infeasible of string  (** the engine's infeasibility reason *)

type stats = {
  hits : int;  (** total across tiers, [memory_hits + disk_hits] *)
  misses : int;
  stores : int;
  memory_hits : int;  (** hits satisfied by the in-memory table *)
  disk_hits : int;  (** hits satisfied (and promoted) from the disk tier *)
  corrupt : int;  (** entries quarantined to [*.bad] on parse failure *)
  degraded : bool;  (** disk tier disabled after an I/O error *)
  evictions : int;  (** memory entries dropped by the [mem_entries] cap *)
}

type t

(** [create ?dir ?mem_entries ()] makes a store; [dir] enables the on-disk
    tier (the versioned subdirectory is created on demand).

    [mem_entries] caps the in-memory tier: once more than that many
    distinct keys are resident, the least recently used entry is evicted
    (counted in [stats.evictions] and the [cache.evictions] metric) so a
    long-running process — the [pchls serve] daemon in particular — holds
    a bounded working set. Evicted entries are only forgotten by the
    memory tier; with a disk tier they remain on disk and re-promote on
    the next lookup. Omitted means unbounded, as before.

    @raise Invalid_argument when [mem_entries < 1]. *)
val create : ?dir:string -> ?mem_entries:int -> unit -> t

(** [in_memory ()] is [create ()]. *)
val in_memory : unit -> t

(** [dir t] is the versioned on-disk directory, if the disk tier is on. *)
val dir : t -> string option

(** [find t key] looks the key up in memory, then on disk (promoting disk
    hits to memory). Counts a hit (per tier) or a miss. *)
val find : t -> key -> summary option

(** [add t key summary] stores in memory and, when enabled, on disk.
    Counts a store. A disk write failure disables the disk tier
    ([stats.degraded]) and is otherwise ignored. *)
val add : t -> key -> summary -> unit

val stats : t -> stats

(** [size t] is the number of in-memory entries. *)
val size : t -> int

(** [clear t] drops every in-memory entry and deletes every on-disk entry.
    Counters are not reset. *)
val clear : t -> unit

(** [disk_usage ~dir] is [(entries, bytes)] for the current-version tier
    under [dir]; [(0, 0)] when absent. *)
val disk_usage : dir:string -> int * int

val pp_stats : Format.formatter -> stats -> unit
