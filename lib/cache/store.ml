let src = Logs.Src.create "pchls.cache" ~doc:"synthesis result cache"

module Log = (val Logs.src_log src : Logs.LOG)
module Op = Pchls_dfg.Op
module Module_spec = Pchls_fulib.Module_spec
module Trace = Pchls_obs.Trace
module Metrics = Pchls_obs.Metrics
module Clock = Pchls_obs.Clock
module Fault = Pchls_resil.Fault
module Atomic_io = Pchls_resil.Atomic_io

let m_hit = Metrics.counter "cache.hit"
let m_hit_memory = Metrics.counter "cache.hit.memory"
let m_hit_disk = Metrics.counter "cache.hit.disk"
let m_miss = Metrics.counter "cache.miss"
let m_store = Metrics.counter "cache.store"
let m_corrupt = Metrics.counter "cache.corrupt_entries"
let m_degraded = Metrics.counter "cache.degraded"
let m_evictions = Metrics.counter "cache.evictions"

let h_memory_lookup_ns =
  Metrics.histogram ~buckets:Metrics.ns_buckets "cache.memory_lookup_ns"

let h_disk_lookup_ns =
  Metrics.histogram ~buckets:Metrics.ns_buckets "cache.disk_lookup_ns"

type key = { fingerprint : Fingerprint.t; time_limit : int; power_limit : float }

type summary =
  | Feasible of {
      area : float;
      peak : float;
      instances : (Module_spec.t * (int * int) list) list;
    }
  | Infeasible of string

type stats = {
  hits : int;  (** total, [memory_hits + disk_hits] *)
  misses : int;
  stores : int;
  memory_hits : int;
  disk_hits : int;
  corrupt : int;
  degraded : bool;
  evictions : int;
}

(* A memory-tier entry: the summary plus its last-access sequence number,
   shared with the LRU queue below for lazy invalidation. *)
type entry = { summary : summary; mutable last_access : int }

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  disk : string option;  (** the versioned subdirectory *)
  mem_entries : int option;  (** memory-tier capacity; [None] = unbounded *)
  lru : (string * int) Queue.t;
      (** (key, access sequence) in access order; stale pairs — the key was
          touched again later or already evicted — are skipped on pop *)
  mutable access_seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable memory_hits : int;
  mutable disk_hits : int;
  mutable corrupt : int;
  mutable evictions : int;
  mutable disk_failed : bool;  (** disk tier permanently off after an error *)
}

let version = "v1"
let extension = ".pchls-cache"
let header = "pchls-cache " ^ version

(* Key to entry id: the power limit goes in by its IEEE bits so infinities
   and negative zeros stay distinct and filenames stay safe. *)
let key_id k =
  Printf.sprintf "%s-t%d-p%Lx" k.fingerprint k.time_limit
    (Int64.bits_of_float k.power_limit)

let create ?dir ?mem_entries () =
  (match mem_entries with
  | Some n when n < 1 ->
    invalid_arg
      (Printf.sprintf "Store.create: mem_entries must be >= 1, got %d" n)
  | Some _ | None -> ());
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    disk = Option.map (fun d -> Filename.concat d version) dir;
    mem_entries;
    lru = Queue.create ();
    access_seq = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    memory_hits = 0;
    disk_hits = 0;
    corrupt = 0;
    evictions = 0;
    disk_failed = false;
  }

let in_memory () = create ()
let dir t = t.disk

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- serialization ------------------------------------------------------ *)

let render_summary = function
  | Feasible { area; peak; instances } ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "%s\nfeasible %h %h %d\n" header area peak
         (List.length instances));
    List.iter
      (fun ((m : Module_spec.t), ops) ->
        Buffer.add_string buf
          (Printf.sprintf "module %d %h %h %s %s\n" m.Module_spec.latency
             m.Module_spec.area m.Module_spec.power
             (String.concat "," (List.map Op.to_string m.Module_spec.ops))
             m.Module_spec.name);
        Buffer.add_string buf
          (Printf.sprintf "ops%s\n"
             (String.concat ""
                (List.map (fun (op, t) -> Printf.sprintf " %d:%d" op t) ops))))
      instances;
    Buffer.contents buf
  | Infeasible reason ->
    Printf.sprintf "%s\ninfeasible %s\n" header (String.escaped reason)

(* Defensive parse: [None] on any malformed shape; callers treat that as a
   miss (corrupt or stale entry). *)
let parse_summary text =
  let ( let* ) = Option.bind in
  let parse_instance = function
    | [ mline; oline ] ->
      let* () =
        if String.length mline > 7 && String.sub mline 0 7 = "module " then
          Some ()
        else None
      in
      (match String.split_on_char ' ' mline with
      | "module" :: lat :: area :: power :: ops :: name_words
        when name_words <> [] ->
        let name = String.concat " " name_words in
        let* latency = int_of_string_opt lat in
        let* area = float_of_string_opt area in
        let* power = float_of_string_opt power in
        let* kinds =
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match Op.of_string s with
              | Ok k -> Some (k :: acc)
              | Error _ -> None)
            (Some []) (String.split_on_char ',' ops)
        in
        let* spec =
          match
            Module_spec.make ~name ~ops:(List.rev kinds) ~area ~latency ~power
          with
          | Ok m -> Some m
          | Error _ -> None
        in
        let* ops =
          match String.split_on_char ' ' oline with
          | "ops" :: pairs ->
            List.fold_left
              (fun acc pair ->
                let* acc = acc in
                match String.split_on_char ':' pair with
                | [ op; start ] ->
                  let* op = int_of_string_opt op in
                  let* start = int_of_string_opt start in
                  Some ((op, start) :: acc)
                | _ -> None)
              (Some []) pairs
            |> Option.map List.rev
          | _ -> None
        in
        Some (spec, ops)
      | _ -> None)
    | _ -> None
  in
  let rec chunks2 = function
    | [] -> Some []
    | a :: b :: rest ->
      let* i = parse_instance [ a; b ] in
      let* is = chunks2 rest in
      Some (i :: is)
    | [ _ ] -> None
  in
  match String.split_on_char '\n' (String.trim text) with
  | h :: first :: rest when h = header -> (
    match String.split_on_char ' ' first with
    | [ "feasible"; area; peak; n ] ->
      let* area = float_of_string_opt area in
      let* peak = float_of_string_opt peak in
      let* n = int_of_string_opt n in
      let* instances = chunks2 rest in
      if List.length instances = n then Some (Feasible { area; peak; instances })
      else None
    | "infeasible" :: reason_words -> (
      match Scanf.unescaped (String.concat " " reason_words) with
      | reason -> Some (Infeasible reason)
      | exception Scanf.Scan_failure _ -> None)
    | _ -> None)
  | _ -> None

(* --- tiers -------------------------------------------------------------- *)

let entry_path disk id = Filename.concat disk (id ^ extension)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A disk I/O error turns the disk tier off for the rest of the store's
   life — the memory tier keeps working, so synthesis degrades to
   cache-off rather than aborting or hammering a broken filesystem. Called
   with the store mutex held. *)
let degrade t msg =
  if not t.disk_failed then begin
    t.disk_failed <- true;
    Metrics.incr m_degraded;
    Log.warn (fun m -> m "disk tier disabled: %s" msg);
    Printf.eprintf
      "pchls: warning: cache disk tier disabled, continuing without it: %s\n%!"
      msg
  end

(* A corrupt entry is renamed aside rather than deleted (its bytes may
   matter for debugging) or left in place (it would be re-parsed on every
   lookup). The [".bad"] suffix keeps it off the [extension] filter. *)
let quarantine t path =
  t.corrupt <- t.corrupt + 1;
  Metrics.incr m_corrupt;
  let bad = path ^ ".bad" in
  (try Sys.rename path bad
   with Sys_error msg -> degrade t ("quarantine failed: " ^ msg));
  Log.warn (fun m -> m "quarantined corrupt/stale entry to %s" bad)

let disk_find t disk id =
  let path = entry_path disk id in
  if Fault.fires "cache.read" then begin
    degrade t "injected fault: cache.read";
    None
  end
  else if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception Sys_error msg ->
      degrade t msg;
      None
    | text -> (
      match parse_summary text with
      | Some _ as s -> s
      | None ->
        quarantine t path;
        None)

let disk_add t disk id summary =
  if Fault.fires "cache.write" then degrade t "injected fault: cache.write"
  else
    try
      Atomic_io.mkdirs disk;
      Atomic_io.write_file (entry_path disk id) (render_summary summary)
    with Sys_error msg -> degrade t msg

(* --- memory tier LRU cap ------------------------------------------------ *)

(* All three helpers run with the store mutex held.

   [touch] records an access: the entry remembers its latest sequence
   number and the queue gains an (id, seq) pair, so every earlier pair for
   the same id becomes stale — the classic lazy-deletion LRU, O(1) per
   access with queue length bounded by the access count between evictions.
   Unbounded stores skip all of it (the queue would only grow). *)
let touch t entry id =
  match t.mem_entries with
  | None -> ()
  | Some _ ->
    t.access_seq <- t.access_seq + 1;
    entry.last_access <- t.access_seq;
    Queue.push (id, t.access_seq) t.lru

let rec evict_over_capacity t =
  match t.mem_entries with
  | None -> ()
  | Some cap ->
    if Hashtbl.length t.table > cap then begin
      match Queue.pop t.lru with
      | exception Queue.Empty -> () (* cap >= 1 keeps this unreachable *)
      | id, seq ->
        (match Hashtbl.find_opt t.table id with
        | Some e when e.last_access = seq ->
          (* Freshest pair for a resident entry: genuinely least recently
             used, out it goes. Stale pairs just get skipped. *)
          Hashtbl.remove t.table id;
          t.evictions <- t.evictions + 1;
          Metrics.incr m_evictions;
          Log.debug (fun m -> m "evicted %s (memory cap %d)" id cap)
        | Some _ | None -> ());
        evict_over_capacity t
    end

let mem_insert t id summary =
  let entry = { summary; last_access = 0 } in
  Hashtbl.replace t.table id entry;
  touch t entry id;
  evict_over_capacity t

(* Which tier satisfied a lookup; [None] on miss. *)
type tier = Memory | Disk

let find t k =
  Trace.span ~cat:"cache" "cache.find" @@ fun () ->
  locked t @@ fun () ->
  let id = key_id k in
  let memory_start = Clock.now_ns () in
  let memory = Hashtbl.find_opt t.table id in
  Metrics.observe h_memory_lookup_ns (Clock.elapsed_ns ~since:memory_start);
  let outcome, tier =
    match memory with
    | Some e ->
      touch t e id;
      (Some e.summary, Some Memory)
    | None -> (
      match t.disk with
      | None -> (None, None)
      | Some _ when t.disk_failed -> (None, None)
      | Some disk -> (
        let disk_start = Clock.now_ns () in
        let found = disk_find t disk id in
        Metrics.observe h_disk_lookup_ns (Clock.elapsed_ns ~since:disk_start);
        match found with
        | Some s ->
          mem_insert t id s;
          (Some s, Some Disk)
        | None -> (None, None)))
  in
  (match tier with
  | Some tier ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hit;
    let tier_name =
      match tier with
      | Memory ->
        t.memory_hits <- t.memory_hits + 1;
        Metrics.incr m_hit_memory;
        "memory"
      | Disk ->
        t.disk_hits <- t.disk_hits + 1;
        Metrics.incr m_hit_disk;
        "disk"
    in
    Log.debug (fun m ->
        m "%s hit %s (T=%d, P<=%g)" tier_name k.fingerprint k.time_limit
          k.power_limit)
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_miss;
    Log.debug (fun m ->
        m "miss %s (T=%d, P<=%g)" k.fingerprint k.time_limit k.power_limit));
  outcome

let add t k summary =
  Trace.span ~cat:"cache" "cache.add" @@ fun () ->
  locked t @@ fun () ->
  let id = key_id k in
  mem_insert t id summary;
  t.stores <- t.stores + 1;
  Metrics.incr m_store;
  Log.debug (fun m ->
      m "store %s (T=%d, P<=%g)" k.fingerprint k.time_limit k.power_limit);
  if not t.disk_failed then
    Option.iter (fun disk -> disk_add t disk id summary) t.disk

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    memory_hits = t.memory_hits;
    disk_hits = t.disk_hits;
    corrupt = t.corrupt;
    degraded = t.disk_failed;
    evictions = t.evictions;
  }

let size t = locked t @@ fun () -> Hashtbl.length t.table

let entries_of_disk disk =
  match Sys.readdir disk with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f extension)
    |> List.map (Filename.concat disk)

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  Queue.clear t.lru;
  match t.disk with
  | None -> ()
  | Some disk ->
    List.iter
      (fun path -> try Sys.remove path with Sys_error _ -> ())
      (entries_of_disk disk)

let disk_usage ~dir =
  let disk = Filename.concat dir version in
  List.fold_left
    (fun (n, bytes) path ->
      let size =
        match open_in_bin path with
        | exception Sys_error _ -> 0
        | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> in_channel_length ic)
      in
      (n + 1, bytes + size))
    (0, 0) (entries_of_disk disk)

let pp_stats ppf
    ({
       hits;
       misses;
       stores;
       memory_hits;
       disk_hits;
       corrupt;
       degraded;
       evictions;
     } :
      stats) =
  Format.fprintf ppf "hits=%d (memory=%d disk=%d) misses=%d stores=%d" hits
    memory_hits disk_hits misses stores;
  (* Degradation/eviction facts only appear when they happened, keeping the
     healthy-path rendering (and the golden CLI outputs) unchanged. *)
  if evictions > 0 then Format.fprintf ppf " evictions=%d" evictions;
  if corrupt > 0 then Format.fprintf ppf " corrupt=%d" corrupt;
  if degraded then Format.fprintf ppf " degraded"
