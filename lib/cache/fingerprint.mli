(** Content-addressed fingerprints of synthesis inputs.

    A fingerprint is a stable hex digest of the {e content} of a synthesis
    input — the graph structure, the FU library, free-form context strings —
    such that equal content yields equal digests across processes and runs.
    Fingerprints key the {!Store} synthesis cache.

    {!graph} is canonical: it is invariant under any renumbering of node
    ids (only structure, kinds, node names and the graph name matter), so a
    graph rebuilt with fresh ids hits the same cache entries. *)

type t = string
(** A hex digest. *)

(** [of_string s] digests an arbitrary string, e.g. a serialized engine
    policy or cost model. *)
val of_string : string -> t

(** [combine parts] digests a list of fingerprints (or raw strings) into
    one key; order matters. *)
val combine : t list -> t

(** [graph g] is a canonical digest of [g]: node kinds, node names, the
    graph name and the edge structure, but {e not} the numeric node ids.
    Computed by Weisfeiler–Lehman-style label refinement: every node starts
    from a label of its kind and name, then repeatedly absorbs the sorted
    labels of its predecessors and successors; the digest hashes the sorted
    multiset of final node labels plus all edge label pairs. Renumbering
    node ids therefore never changes the digest, while changing a kind, a
    name, or rewiring an edge does. *)
val graph : Pchls_dfg.Graph.t -> t

(** [library lib] digests the module specs in registration order (order
    matters: the engine breaks ties towards earlier registration). *)
val library : Pchls_fulib.Library.t -> t

(** [float_repr f] is the exact textual representation used inside
    fingerprints (hexadecimal notation — no rounding). *)
val float_repr : float -> string
