module Graph = Pchls_dfg.Graph
module Op = Pchls_dfg.Op
module Library = Pchls_fulib.Library
module Module_spec = Pchls_fulib.Module_spec
module Int_map = Map.Make (Int)

type t = string

let of_string s = Digest.to_hex (Digest.string s)
let combine parts = of_string (String.concat "\n" parts)
let float_repr f = Printf.sprintf "%h" f

(* Weisfeiler-Lehman label refinement. Node ids are used only as map keys,
   never as label content, so the result is invariant under renumbering.
   Enough rounds to propagate position information along chains of
   identically-labelled nodes; capped so huge graphs stay cheap (beyond the
   cap, only nodes further than [max_rounds] hops from any distinguishing
   feature could alias — collisions, not false splits). *)
let max_rounds = 32

let graph g =
  let ids = Graph.node_ids g in
  let initial =
    List.fold_left
      (fun m id ->
        let n = Graph.node g id in
        Int_map.add id
          (of_string
             (Printf.sprintf "n:%s:%s" (Op.to_string n.Graph.kind) n.Graph.name))
          m)
      Int_map.empty ids
  in
  let refine labels =
    List.fold_left
      (fun m id ->
        let around neighbours =
          List.map (fun j -> Int_map.find j labels) (neighbours g id)
          |> List.sort String.compare
          |> String.concat ","
        in
        Int_map.add id
          (of_string
             (Int_map.find id labels ^ "|p:" ^ around Graph.preds ^ "|s:"
            ^ around Graph.succs))
          m)
      Int_map.empty ids
  in
  let rec iterate n labels =
    if n = 0 then labels else iterate (n - 1) (refine labels)
  in
  let final = iterate (min (Graph.node_count g) max_rounds) initial in
  let node_sigs =
    List.map (fun id -> Int_map.find id final) ids |> List.sort String.compare
  in
  let edge_sigs =
    Graph.edges g
    |> List.map (fun (a, b) ->
           Int_map.find a final ^ ">" ^ Int_map.find b final)
    |> List.sort String.compare
  in
  of_string
    (String.concat "\n"
       (Printf.sprintf "g:%s" (Graph.name g)
       :: Printf.sprintf "n=%d;e=%d" (Graph.node_count g) (Graph.edge_count g)
       :: (node_sigs @ edge_sigs)))

let library lib =
  Library.to_list lib
  |> List.map (fun (m : Module_spec.t) ->
         Printf.sprintf "m:%s:%s:%s:%d:%s" m.Module_spec.name
           (String.concat ","
              (List.map Op.to_string m.Module_spec.ops))
           (float_repr m.Module_spec.area)
           m.Module_spec.latency
           (float_repr m.Module_spec.power))
  |> String.concat "\n" |> of_string
