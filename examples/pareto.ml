(* Design-space exploration with Pareto extraction and budget tightening:
   load a CDFG from its text serialisation (as a user of the CLI would),
   sweep the (T, P) grid, print the Pareto-optimal design points, and show
   what Explore.tighten recovers at a loose power budget.

   Run with: dune exec examples/pareto.exe *)

module Explore = Pchls_core.Explore
module Design = Pchls_core.Design
module Library = Pchls_fulib.Library
module Text_format = Pchls_dfg.Text_format
module Benchmarks = Pchls_dfg.Benchmarks

let () =
  (* Round-trip elliptic through the text format, as external graphs come. *)
  let graph =
    match Text_format.of_string (Text_format.to_string Benchmarks.elliptic) with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  let points =
    Explore.sweep ~library:Library.default graph ~times:[ 18; 22; 28 ]
      ~powers:[ 10.; 12.5; 15.; 20.; 30.; 60. ]
  in
  Format.printf "full grid (areas):@.%s@." (Explore.render_table points);
  Format.printf "pareto-optimal (time, power, area) points:@.";
  List.iter
    (fun p ->
      match p.Explore.result with
      | Explore.Feasible { area; peak; _ } ->
        Format.printf "  T=%-3d P<=%-5g area=%-6.0f (measured peak %.1f)@."
          p.Explore.time_limit p.Explore.power_limit area peak
      | Explore.Infeasible _ | Explore.Pruned _ | Explore.Failed _ -> ())
    (Explore.pareto points);
  Format.printf "@.budget tightening at T=22, P<=60:@.";
  match
    Explore.tighten ~library:Library.default graph ~time_limit:22
      ~power_limit:60.
  with
  | Ok d ->
    Format.printf "  refined area %.0f with peak %.2f (any peak under 60 \
                   still meets the budget)@."
      (Design.area d).Design.total
      (Pchls_power.Profile.peak (Design.profile d))
  | Error msg -> Format.printf "  infeasible: %s@." msg
